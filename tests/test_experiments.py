"""Experiment harnesses: smoke runs at tiny scale + analytical checks.

The analytical experiments (fig7, table1) run in full and must pass every
shape check. The simulation-backed ones run at a small cycle scale here —
their full-scale shape checks are exercised by the benchmark suite.
"""

import pytest

from repro.experiments import fig4, fig5, fig6, fig7, fig8, table1
from repro.experiments.common import (
    ExperimentResult,
    default_config,
    effective_scale,
    format_report,
)

TINY = 0.15


class TestCommon:
    def test_effective_scale_prefers_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "2.0")
        assert effective_scale(0.5) == 0.5
        assert effective_scale(None) == 2.0

    def test_effective_scale_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPERIMENT_SCALE", raising=False)
        assert effective_scale(None) == 1.0

    def test_effective_scale_ignores_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "not-a-number")
        assert effective_scale(None) == 1.0

    def test_default_config_scales(self):
        small = default_config(0.1)
        full = default_config(1.0)
        assert small.measure_cycles < full.measure_cycles

    def test_format_report_contains_checks(self):
        result = ExperimentResult("x", "title")
        result.check("something", True)
        result.check("other", False)
        text = format_report(result)
        assert "[PASS] something" in text
        assert "[FAIL] other" in text
        assert result.failed_checks() == ["other"]
        assert not result.all_checks_pass


class TestAnalyticalExperiments:
    def test_table1_all_checks_pass(self):
        result = table1.run()
        assert result.all_checks_pass, result.failed_checks()
        assert any("DeFT" in row for row in result.rows)

    def test_fig7_all_checks_pass(self):
        for result in fig7.run():
            assert result.all_checks_pass, result.failed_checks()


@pytest.mark.slow
class TestSimulationExperimentsSmoke:
    """Tiny-scale smoke runs: structure + data plumbing, not statistics."""

    def test_fig4a_structure(self):
        result = fig4.fig4a(scale=TINY)
        assert set(result.data) == {"deft", "mtr", "rc"}
        assert len(result.data["deft"]["rates"]) == len(fig4.RATES_UNIFORM_4)
        assert all(latency > 0 for latency in result.data["deft"]["latency"])

    def test_fig5_structure(self):
        result = fig5.run(scale=TINY)
        assert "uniform" in result.data
        for util in result.data["uniform"].values():
            assert sum(util) == pytest.approx(1.0)

    def test_fig6a_structure(self):
        result = fig6.fig6a(scale=TINY)
        assert len(result.data["improvements"]) == 8

    def test_fig8a_structure(self):
        result = fig8.fig8a(scale=TINY)
        assert set(result.data) == {"deft", "deft-dis", "deft-ran"}
        # DeFT keeps delivering under the 12.5% fault pattern.
        deft_check = [c for c in result.checks if "reachability" in c[0]]
        assert deft_check and deft_check[0][1]

    def test_fig8_fault_patterns(self):
        from repro.topology.presets import baseline_4_chiplets

        system = baseline_4_chiplets()
        state_a = fig8.fault_pattern_12p5(system)
        state_b = fig8.fault_pattern_25(system)
        assert state_a.num_faults == 4
        assert state_b.num_faults == 8
        assert not state_a.disconnects_any_chiplet()
        assert not state_b.disconnects_any_chiplet()
