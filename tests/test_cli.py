"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--algo", "bogus"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table1"])
        assert args.name == "table1"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "baseline-4-chiplets" in out
        assert "deft" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "DeFT" in out
        assert "[PASS]" in out

    def test_reachability(self, capsys):
        assert main(["reachability", "--algo", "rc", "--max-faults", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 faulty VLs" in out

    def test_optimize_prints_map(self, capsys):
        assert main(["optimize", "--faulty", "1"]) == 0
        out = capsys.readouterr().out
        assert "faulty down VLs [1]" in out
        assert "*" in out

    def test_simulate_small(self, capsys):
        code = main([
            "simulate", "--rate", "0.004", "--warmup", "50",
            "--cycles", "200", "--drain", "3000", "--json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm=DeFT" in out
        payload = json.loads(out[out.index("{"):])
        assert payload["average_latency"] > 0

    def test_simulate_with_fault(self, capsys):
        code = main([
            "simulate", "--algo", "rc", "--rate", "0.004", "--warmup", "50",
            "--cycles", "200", "--drain", "3000", "--fault", "0:down",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dropped" in out

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--algo", "deft", "--rates", "0.002,0.004",
            "--warmup", "50", "--cycles", "150", "--drain", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0.0020" in out and "0.0040" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_custom_grid_system(self, capsys):
        assert main(["reachability", "--system", "2x1", "--max-faults", "1"]) == 0


class TestCampaignCommand:
    ARGS = [
        "campaign", "--algo", "deft", "rc", "--rates", "0.002,0.004",
        "--warmup", "50", "--cycles", "150", "--drain", "2000",
    ]

    def test_cold_then_warm_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.ARGS + ["--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert "0 cached" in cold and "4 executed" in cold
        assert main(self.ARGS + ["--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert "4 cached" in warm and "0 executed" in warm
        # Cached and executed runs report identical latency tables.
        table = lambda text: [l for l in text.splitlines() if l.startswith("0.00")]
        assert table(warm) == table(cold)

    def test_no_cache_leaves_directory_untouched(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(
            self.ARGS + ["--cache-dir", str(cache_dir), "--no-cache", "--quiet"]
        ) == 0
        assert not cache_dir.exists()

    def test_json_dump(self, capsys, tmp_path):
        out_path = tmp_path / "campaign.json"
        assert main(
            self.ARGS + ["--no-cache", "--quiet", "--json", str(out_path)]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert len(payload["jobs"]) == len(payload["results"]) == 4
        assert payload["results"][0]["ok"]

    def test_json_with_failed_job_is_strict(self, capsys, tmp_path):
        """NaN metrics of failed jobs serialize as null, not bare NaN."""
        out_path = tmp_path / "campaign.json"
        code = main(
            self.ARGS
            + ["--no-cache", "--quiet", "--fault", "999:down",
               "--json", str(out_path)]
        )
        assert code == 1
        text = out_path.read_text()
        payload = json.loads(text, parse_constant=lambda c: pytest.fail(
            f"non-strict JSON constant {c!r} in artifact"
        ))
        assert not payload["results"][0]["ok"]
        assert payload["results"][0]["average_latency"] is None

    def test_fault_flag_propagates(self, capsys, tmp_path):
        out_path = tmp_path / "campaign.json"
        assert main(
            self.ARGS
            + ["--no-cache", "--quiet", "--fault", "0:down",
               "--json", str(out_path)]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["jobs"][0]["faults"] == [[0, "down"]]

    def test_workers_flag(self, capsys, tmp_path):
        assert main(
            self.ARGS + ["--no-cache", "--quiet", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "4 executed" in out


class TestExperimentRunnerFlags:
    def test_experiment_with_workers_and_cache(self, capsys, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        args = ["experiment", "fig5", "--scale", "0.05",
                "--workers", "2", "--cache-dir", cache_dir]
        main(args)  # shape checks may fail at this tiny scale; only plumbing matters
        out = capsys.readouterr().out
        assert "VC utilization" in out
        # Second invocation hits the cache and reproduces the same table.
        main(args)
        out2 = capsys.readouterr().out
        assert out2.splitlines()[1:6] == out.splitlines()[1:6]
