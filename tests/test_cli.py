"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--algo", "bogus"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table1"])
        assert args.name == "table1"


class TestFaultSpecParsing:
    """Regression: the fault-spec grammar must validate, not coerce."""

    def test_bare_vl_defaults_to_down(self):
        args = build_parser().parse_args(["simulate", "--fault", "3"])
        assert args.fault == [(3, "down")]

    def test_explicit_directions(self):
        args = build_parser().parse_args(
            ["simulate", "--fault", "3:down", "--fault", "5:UP"]
        )
        assert args.fault == [(3, "down"), (5, "up")]

    def test_misspelled_direction_is_an_error_not_down(self, capsys):
        """`--fault 3:upp` used to silently inject a *down* fault."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--fault", "3:upp"])
        assert "fault direction must be 'down' or 'up'" in capsys.readouterr().err

    def test_empty_direction_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--fault", "3:"])
        assert "fault direction" in capsys.readouterr().err

    def test_non_integer_vl_is_an_error_not_a_traceback(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deadlock", "--fault", "abc"])
        assert "must be an integer" in capsys.readouterr().err

    def test_negative_vl_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--fault=-3:down"])
        assert "must be >= 0" in capsys.readouterr().err


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "baseline-4-chiplets" in out
        assert "deft" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "DeFT" in out
        assert "[PASS]" in out

    def test_reachability(self, capsys):
        assert main(["reachability", "--algo", "rc", "--max-faults", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 faulty VLs" in out

    def test_optimize_prints_map(self, capsys):
        assert main(["optimize", "--faulty", "1"]) == 0
        out = capsys.readouterr().out
        assert "faulty down VLs [1]" in out
        assert "*" in out

    def test_simulate_small(self, capsys):
        code = main([
            "simulate", "--rate", "0.004", "--warmup", "50",
            "--cycles", "200", "--drain", "3000", "--json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm=DeFT" in out
        payload = json.loads(out[out.index("{"):])
        assert payload["average_latency"] > 0

    def test_simulate_with_fault(self, capsys):
        code = main([
            "simulate", "--algo", "rc", "--rate", "0.004", "--warmup", "50",
            "--cycles", "200", "--drain", "3000", "--fault", "0:down",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dropped" in out

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--algo", "deft", "--rates", "0.002,0.004",
            "--warmup", "50", "--cycles", "150", "--drain", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0.0020" in out and "0.0040" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_custom_grid_system(self, capsys):
        assert main(["reachability", "--system", "2x1", "--max-faults", "1"]) == 0


class TestCampaignCommand:
    ARGS = [
        "campaign", "--algo", "deft", "rc", "--rates", "0.002,0.004",
        "--warmup", "50", "--cycles", "150", "--drain", "2000",
    ]

    def test_cold_then_warm_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.ARGS + ["--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert "0 cached" in cold and "4 executed" in cold
        assert main(self.ARGS + ["--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert "4 cached" in warm and "0 executed" in warm
        # Cached and executed runs report identical latency tables.
        table = lambda text: [l for l in text.splitlines() if l.startswith("0.00")]
        assert table(warm) == table(cold)

    def test_no_cache_leaves_directory_untouched(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(
            self.ARGS + ["--cache-dir", str(cache_dir), "--no-cache", "--quiet"]
        ) == 0
        assert not cache_dir.exists()

    def test_json_dump(self, capsys, tmp_path):
        out_path = tmp_path / "campaign.json"
        assert main(
            self.ARGS + ["--no-cache", "--quiet", "--json", str(out_path)]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert len(payload["jobs"]) == len(payload["results"]) == 4
        assert payload["results"][0]["ok"]

    def test_json_with_failed_job_is_strict(self, capsys, tmp_path):
        """NaN metrics of failed jobs serialize as null, not bare NaN."""
        out_path = tmp_path / "campaign.json"
        code = main(
            self.ARGS
            + ["--no-cache", "--quiet", "--fault", "999:down",
               "--json", str(out_path)]
        )
        assert code == 1
        text = out_path.read_text()
        payload = json.loads(text, parse_constant=lambda c: pytest.fail(
            f"non-strict JSON constant {c!r} in artifact"
        ))
        assert not payload["results"][0]["ok"]
        assert payload["results"][0]["average_latency"] is None

    def test_fault_flag_propagates(self, capsys, tmp_path):
        out_path = tmp_path / "campaign.json"
        assert main(
            self.ARGS
            + ["--no-cache", "--quiet", "--fault", "0:down",
               "--json", str(out_path)]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["jobs"][0]["faults"] == [[0, "down"]]

    def test_workers_flag(self, capsys, tmp_path):
        assert main(
            self.ARGS + ["--no-cache", "--quiet", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "4 executed" in out


class TestMonteCarloCommand:
    ARGS = ["montecarlo", "--algo", "rc", "--k", "1,2", "--samples", "10",
            "--seed", "0", "--quiet"]

    def test_reachability_output_and_json(self, capsys, tmp_path):
        out_path = tmp_path / "mc.json"
        code = main(self.ARGS + ["--no-cache", "--json", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Monte Carlo reachability" in out
        assert "rc k=1" in out and "rc k=2" in out
        payload = json.loads(out_path.read_text())
        assert len(payload["points"]) == 2
        point = payload["points"][0]
        assert point["completed"] == 10
        assert point["ci"][0] <= point["mean"] <= point["ci"][1]

    def test_second_run_served_from_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.ARGS + ["--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert "20 executed" in cold
        assert main(self.ARGS + ["--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert "20 cached, 0 executed" in warm
        table = lambda text: [l for l in text.splitlines() if "rc k=" in l]
        assert table(warm) == table(cold)

    def test_latency_metric(self, capsys):
        code = main([
            "montecarlo", "--algo", "deft", "--k", "1", "--samples", "3",
            "--metric", "latency", "--rate", "0.004", "--warmup", "50",
            "--cycles", "150", "--drain", "2000", "--no-cache", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "average packet latency" in out
        assert "pooled delivery" in out


class TestCacheCommand:
    def _populate(self, tmp_path):
        from repro.config import SimulationConfig
        from repro.runner import Job, ResultCache, SystemRef, TrafficSpec, execute_job

        cache = ResultCache(tmp_path)
        job = Job.make(
            SystemRef.baseline4(), "rc",
            TrafficSpec.make("uniform", rate=0.004),
            SimulationConfig(warmup_cycles=30, measure_cycles=100,
                             drain_cycles=1_200),
        )
        cache.put(job, execute_job(job))
        return cache

    def test_stats_and_prune(self, capsys, tmp_path):
        cache = self._populate(tmp_path)
        (tmp_path / "ab").mkdir(exist_ok=True)
        (tmp_path / "ab" / "tmpdead.tmp").write_text("partial")
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 cached result(s)" in out and "1 orphaned tmp" in out
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert len(cache) == 1  # servable entry kept
        assert not list(tmp_path.glob("*/*.tmp"))

    def test_prune_all_empties_the_cache(self, capsys, tmp_path):
        cache = self._populate(tmp_path)
        assert main(["cache", "prune", "--all", "--cache-dir", str(tmp_path)]) == 0
        assert len(cache) == 0

    def test_stats_on_missing_directory(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "nope")]) == 0
        assert "0 cached result(s)" in capsys.readouterr().out


class TestExperimentRunnerFlags:
    def test_experiment_with_workers_and_cache(self, capsys, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        args = ["experiment", "fig5", "--scale", "0.05",
                "--workers", "2", "--cache-dir", cache_dir]
        main(args)  # shape checks may fail at this tiny scale; only plumbing matters
        out = capsys.readouterr().out
        assert "VC utilization" in out
        # Second invocation hits the cache and reproduces the same table.
        main(args)
        out2 = capsys.readouterr().out
        assert out2.splitlines()[1:6] == out.splitlines()[1:6]
