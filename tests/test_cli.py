"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--algo", "bogus"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table1"])
        assert args.name == "table1"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "baseline-4-chiplets" in out
        assert "deft" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "DeFT" in out
        assert "[PASS]" in out

    def test_reachability(self, capsys):
        assert main(["reachability", "--algo", "rc", "--max-faults", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 faulty VLs" in out

    def test_optimize_prints_map(self, capsys):
        assert main(["optimize", "--faulty", "1"]) == 0
        out = capsys.readouterr().out
        assert "faulty down VLs [1]" in out
        assert "*" in out

    def test_simulate_small(self, capsys):
        code = main([
            "simulate", "--rate", "0.004", "--warmup", "50",
            "--cycles", "200", "--drain", "3000", "--json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm=DeFT" in out
        payload = json.loads(out[out.index("{"):])
        assert payload["average_latency"] > 0

    def test_simulate_with_fault(self, capsys):
        code = main([
            "simulate", "--algo", "rc", "--rate", "0.004", "--warmup", "50",
            "--cycles", "200", "--drain", "3000", "--fault", "0:down",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dropped" in out

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--algo", "deft", "--rates", "0.002,0.004",
            "--warmup", "50", "--cycles", "150", "--drain", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0.0020" in out and "0.0040" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_custom_grid_system(self, capsys):
        assert main(["reachability", "--system", "2x1", "--max-faults", "1"]) == 0
