"""Distributed campaign execution: spool protocol, workers, sharding.

The equality bar everywhere is *bit-identical to SerialBackend*:
``execute_job`` is a pure function of the job, so no amount of queueing,
crashing, requeueing or duplicate execution may change a number.

Subprocess-spawning tests keep job windows tiny (analytic reachability
jobs or short simulation windows) so the module stays in CI budget on
one core.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.config import SimulationConfig
from repro.distributed import (
    Spool,
    SpoolBackend,
    coverage_check,
    parse_shard,
    run_worker,
    shard_bounds,
    shard_campaign,
    shard_jobs,
    shard_of_key,
)
from repro.distributed.backend import _worker_command
from repro.montecarlo import montecarlo_jobs
from repro.runner import (
    Campaign,
    CampaignRunner,
    Job,
    ResultCache,
    SerialBackend,
    SystemRef,
    TrafficSpec,
)

TINY = SimulationConfig(
    warmup_cycles=30, measure_cycles=100, drain_cycles=1_200, watchdog_cycles=2_000
)


def reachability_jobs(samples: int = 6, algorithm: str = "rc") -> list[Job]:
    """Fast analytic Monte Carlo jobs (no simulator) on one topology."""
    return montecarlo_jobs(
        SystemRef.baseline4(), algorithm, 2, samples, seed=0, metric="reachability"
    )


def simulate_jobs(count: int = 2) -> list[Job]:
    return [
        Job.make(
            SystemRef.baseline4(), "rc",
            TrafficSpec.make("uniform", rate=0.003), TINY, seed=seed,
        )
        for seed in range(1, count + 1)
    ]


def serial_results(jobs):
    return SerialBackend().run(jobs)


class TestSpoolProtocol:
    def test_enqueue_claim_complete(self, tmp_path):
        jobs = reachability_jobs(3)
        spool = Spool(tmp_path)
        assert spool.enqueue(jobs) == 3
        assert spool.pending_count() == 3
        # Idempotent by content address.
        assert spool.enqueue(jobs) == 0

        claim = spool.claim("w1")
        assert claim is not None
        assert claim.attempts == 1
        # The round-tripped job is canonically one of ours (same content
        # address; object equality differs in the applied config seed).
        assert claim.job.key() in {job.key() for job in jobs}
        assert spool.pending_count() == 2
        assert spool.claimed_count() == 1

        spool.complete(claim)
        assert spool.claimed_count() == 0

    def test_claim_is_exclusive(self, tmp_path):
        jobs = reachability_jobs(2)
        spool = Spool(tmp_path)
        spool.enqueue(jobs)
        first = spool.claim("w1")
        second = spool.claim("w2")
        third = spool.claim("w3")
        assert first is not None and second is not None
        assert first.key != second.key
        assert third is None  # queue drained

    def test_claimed_key_not_reenqueued(self, tmp_path):
        jobs = reachability_jobs(1)
        spool = Spool(tmp_path)
        spool.enqueue(jobs)
        claim = spool.claim("w1")
        assert claim is not None
        assert spool.enqueue(jobs) == 0
        assert spool.pending_count() == 0

    def test_requeue_after_lease_expiry(self, tmp_path):
        """The crash-recovery core: an expired claim goes back to pending
        with its attempt count carried over."""
        jobs = reachability_jobs(1)
        spool = Spool(tmp_path, lease_s=5.0)
        spool.enqueue(jobs)
        claim = spool.claim("doomed")
        assert claim is not None and spool.pending_count() == 0

        # Not expired yet: nothing happens.
        assert spool.requeue_expired(now=claim.deadline - 1.0) == 0
        assert spool.claimed_count() == 1

        assert spool.requeue_expired(now=claim.deadline + 1.0) == 1
        assert spool.claimed_count() == 0
        assert spool.pending_count() == 1

        again = spool.claim("w2")
        assert again is not None
        assert again.attempts == 2
        assert again.job.key() == claim.job.key()

    def test_heartbeat_extends_lease(self, tmp_path):
        jobs = reachability_jobs(1)
        spool = Spool(tmp_path, lease_s=5.0)
        spool.enqueue(jobs)
        claim = spool.claim("w1")
        original_deadline = claim.deadline
        spool.heartbeat(claim, now=original_deadline - 1.0)
        assert claim.deadline > original_deadline
        assert spool.requeue_expired(now=original_deadline + 1.0) == 0

    def test_expiry_past_max_attempts_is_terminal(self, tmp_path):
        jobs = reachability_jobs(1)
        key = jobs[0].key()
        spool = Spool(tmp_path, lease_s=5.0, max_attempts=2)
        spool.enqueue(jobs)
        for _ in range(2):
            claim = spool.claim("flaky")
            assert claim is not None
            spool.requeue_expired(now=claim.deadline + 1.0)
        assert spool.pending_count() == 0
        failed = spool.failed_result(key)
        assert failed is not None and not failed.ok
        assert "gave up after 2 attempt(s)" in failed.error

    def test_reenqueue_clears_stale_failure(self, tmp_path):
        jobs = reachability_jobs(1)
        key = jobs[0].key()
        spool = Spool(tmp_path, lease_s=5.0, max_attempts=1)
        spool.enqueue(jobs)
        claim = spool.claim("w1")
        spool.requeue_expired(now=claim.deadline + 1.0)
        assert spool.failed_result(key) is not None
        # A new campaign retries the key: the stale failure must go.
        assert spool.enqueue(jobs) == 1
        assert spool.failed_result(key) is None

    def test_stop_sentinel(self, tmp_path):
        spool = Spool(tmp_path)
        assert not spool.stop_requested()
        spool.request_stop()
        assert spool.stop_requested()
        spool.clear_stop()
        assert not spool.stop_requested()


class TestWorker:
    def test_inline_worker_drains_spool_bit_identical(self, tmp_path):
        jobs = reachability_jobs(5)
        reference = serial_results(jobs)
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue(jobs)
        cache = ResultCache(tmp_path / "cache")
        stats = run_worker(
            spool.root, cache, worker_id="w0", idle_timeout_s=0.2
        )
        assert stats["jobs_done"] == len(jobs)
        assert [cache.get(job) for job in jobs] == reference
        assert spool.pending_count() == 0 and spool.claimed_count() == 0

    def test_worker_publishes_session_stats(self, tmp_path):
        jobs = reachability_jobs(4)
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue(jobs)
        cache = ResultCache(tmp_path / "cache")
        run_worker(spool.root, cache, worker_id="observable", idle_timeout_s=0.2)
        stats = spool.worker_stats()["observable"]
        assert stats["jobs_done"] == 4
        # Repeated topology: at most one miss per category, rest hits.
        session = stats["session"]
        assert session.get("system.hit", 0) >= 1
        assert session.get("algorithm.hit", 0) >= 1

    def test_worker_respects_max_jobs(self, tmp_path):
        jobs = reachability_jobs(4)
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue(jobs)
        cache = ResultCache(tmp_path / "cache")
        stats = run_worker(spool.root, cache, max_jobs=2, idle_timeout_s=0.2)
        assert stats["jobs_done"] == 2
        assert spool.pending_count() == 2

    def test_worker_stops_on_sentinel(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        spool.request_stop()
        cache = ResultCache(tmp_path / "cache")
        stats = run_worker(spool.root, cache, idle_timeout_s=30.0)
        assert stats["jobs_done"] == 0  # returned immediately, no timeout

    def test_failed_job_retries_then_lands_terminally(self, tmp_path):
        bad = Job.make(
            SystemRef.baseline4(), "bogus",
            TrafficSpec.make("uniform", rate=0.004), TINY,
        )
        spool = Spool(tmp_path / "spool", max_attempts=2).ensure()
        spool.enqueue([bad])
        cache = ResultCache(tmp_path / "cache")
        # The worker must share the spool's retry policy (autospawned
        # workers get it via --max-attempts; here we pass it directly).
        stats = run_worker(spool.root, cache, max_attempts=2, idle_timeout_s=0.3)
        # Executed twice (deterministic failure burns its attempts)...
        assert stats["jobs_done"] == 2 and stats["jobs_failed"] == 2
        # ...then became a terminal failure, never a cache entry.
        failed = spool.failed_result(bad.key())
        assert failed is not None and "ConfigurationError" in failed.error
        assert cache.get(bad) is None


class TestSpoolBackend:
    def test_spool_backend_smoke_matches_serial(self, tmp_path):
        """The CI smoke bar: 2 autospawned workers == SerialBackend."""
        jobs = reachability_jobs(8)
        reference = serial_results(jobs)
        cache = ResultCache(tmp_path / "cache")
        with SpoolBackend(
            cache=cache, spool_dir=tmp_path / "spool", workers=2, lease_s=10.0
        ) as backend:
            results = backend.run(jobs)
            stats = backend.spool.worker_stats()
        assert results == reference
        assert all(result.ok for result in results)
        # Both autospawned workers published observability stats.
        assert len(stats) == 2
        assert sum(s["jobs_done"] for s in stats.values()) >= len(jobs)

    def test_simulation_jobs_through_campaign_runner(self, tmp_path):
        jobs = simulate_jobs(2)
        reference = CampaignRunner(backend=SerialBackend()).run(jobs)
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(
            backend=SpoolBackend(
                cache=cache, spool_dir=tmp_path / "spool", workers=2,
                lease_s=10.0,
            ),
            cache=cache,
        )
        try:
            report = runner.run(jobs)
        finally:
            runner.close()
        assert report.results == reference.results
        assert report.executed == 2

    def test_workers_persist_across_runs(self, tmp_path):
        """Adaptive-round shape: the second run reuses the live workers."""
        first, second = reachability_jobs(3), reachability_jobs(6)[3:]
        cache = ResultCache(tmp_path / "cache")
        with SpoolBackend(
            cache=cache, spool_dir=tmp_path / "spool", workers=1, lease_s=10.0
        ) as backend:
            backend.run(first)
            pids_after_first = [proc.pid for proc in backend._procs]
            backend.run(second)
            pids_after_second = [proc.pid for proc in backend._procs]
        assert pids_after_first == pids_after_second != []
        assert [cache.get(job) for job in first + second] == serial_results(
            first + second
        )

    def test_terminal_failure_is_collected(self, tmp_path):
        bad = Job.make(
            SystemRef.baseline4(), "bogus",
            TrafficSpec.make("uniform", rate=0.004), TINY,
        )
        good = reachability_jobs(1)[0]
        cache = ResultCache(tmp_path / "cache")
        with SpoolBackend(
            cache=cache, spool_dir=tmp_path / "spool", workers=1,
            lease_s=10.0, max_attempts=2,
        ) as backend:
            results = backend.run([bad, good])
        assert not results[0].ok and "ConfigurationError" in results[0].error
        assert results[1].ok

    def test_requires_cache(self):
        with pytest.raises(ValueError, match="needs a ResultCache"):
            SpoolBackend(cache=None)

    def test_empty_job_list(self, tmp_path):
        with SpoolBackend(
            cache=ResultCache(tmp_path / "cache"), spool_dir=tmp_path / "spool"
        ) as backend:
            assert backend.run([]) == []

    def test_stall_timeout_fails_only_with_nothing_in_flight(self, tmp_path):
        """No fleet ever claims -> remaining jobs fail after the stall
        window; but a held lease suppresses the stall entirely."""
        jobs = reachability_jobs(2)
        cache = ResultCache(tmp_path / "cache")
        backend = SpoolBackend(
            cache=cache, spool_dir=tmp_path / "spool", workers=0,
            lease_s=60.0, stall_timeout_s=0.3, poll_s=0.02,
        )
        try:
            # An in-flight claim (as a remote worker would hold) keeps the
            # backend waiting well past the stall window...
            backend.spool.ensure()
            backend.spool.enqueue(jobs[:1])
            claim = backend.spool.claim("remote-worker")
            assert claim is not None
            import threading

            def finish_later():
                time.sleep(0.8)  # > stall_timeout_s
                result = serial_results([claim.job])[0]
                cache.put(claim.job, result)
                backend.spool.complete(claim)

            finisher = threading.Thread(target=finish_later, daemon=True)
            finisher.start()
            results = backend.run(jobs[:1])
            finisher.join()
            assert results[0].ok  # waited through the held lease

            # ...whereas unclaimed jobs with no fleet stall out.
            stalled = backend.run(jobs[1:2])
            assert not stalled[0].ok
            assert "no spool progress" in stalled[0].error
        finally:
            backend.close()

    def test_external_worker_mode(self, tmp_path):
        """workers=0: the backend only enqueues and collects — a worker
        started by someone else (here: inline) does the executing."""
        import threading

        jobs = reachability_jobs(3)
        cache = ResultCache(tmp_path / "cache")
        backend = SpoolBackend(
            cache=cache, spool_dir=tmp_path / "spool", workers=0,
            lease_s=10.0, stall_timeout_s=60.0,
        )
        worker = threading.Thread(
            target=run_worker,
            args=(tmp_path / "spool", ResultCache(tmp_path / "cache")),
            kwargs={"idle_timeout_s": 5.0},
            daemon=True,
        )
        worker.start()
        try:
            results = backend.run(jobs)
        finally:
            backend.close()
            worker.join(timeout=30.0)
        assert results == serial_results(jobs)


class TestWorkerCrashRecovery:
    """Satellite: kill a worker mid-lease; the job must be requeued after
    lease expiry and the merged campaign stays bit-identical to serial."""

    def _spawn_worker(self, spool: Spool, cache: ResultCache) -> subprocess.Popen:
        command = _worker_command(
            spool.root, cache, worker_id="victim",
            lease_s=spool.lease_s, max_attempts=spool.max_attempts,
            poll_s=0.05, use_session=True,
        )
        env = dict(os.environ)
        package_root = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(package_root) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.Popen(
            command, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    def test_killed_worker_job_requeued_and_results_identical(self, tmp_path):
        # A repeated-topology Monte Carlo campaign (the acceptance
        # scenario), with simulation windows long enough (~1s/job) that
        # the kill lands mid-job.
        jobs = montecarlo_jobs(
            SystemRef.baseline4(), "rc", 2, 2, seed=0, metric="latency",
            traffic=TrafficSpec.make("uniform", rate=0.003),
            config=SimulationConfig(warmup_cycles=300, measure_cycles=2_000,
                                    drain_cycles=20_000),
        )
        reference = serial_results(jobs)
        spool = Spool(tmp_path / "spool", lease_s=2.0).ensure()
        spool.enqueue(jobs)
        cache = ResultCache(tmp_path / "cache")

        victim = self._spawn_worker(spool, cache)
        try:
            # Wait until the worker holds a lease (claims/ is non-empty).
            deadline = time.monotonic() + 60.0
            while spool.claimed_count() == 0:
                assert time.monotonic() < deadline, "worker never claimed"
                assert victim.poll() is None, "worker exited prematurely"
                time.sleep(0.02)
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30.0)
        finally:
            if victim.poll() is None:
                victim.kill()

        # The orphaned claim survives its holder's death...
        orphaned = spool.claimed_count()
        assert orphaned >= 1
        # ...and lease expiry requeues it (forced clock, no sleeping).
        assert spool.requeue_expired(now=time.time() + spool.lease_s + 1) >= 1
        assert spool.claimed_count() == 0

        # A healthy worker finishes the campaign; merged result == serial.
        run_worker(spool.root, cache, worker_id="rescuer", idle_timeout_s=0.3)
        merged = [cache.get(job) for job in jobs]
        assert None not in merged
        assert merged == reference


class TestSharding:
    def grid(self) -> list[Job]:
        return montecarlo_jobs(
            SystemRef.baseline4(), "deft", 2, 40, seed=0, metric="reachability"
        )

    def test_shards_partition_exactly(self):
        jobs = self.grid()
        for num_shards in (1, 2, 3, 7):
            slices = [shard_jobs(jobs, num_shards, i) for i in range(num_shards)]
            assert sum(len(piece) for piece in slices) == len(jobs)
            seen = {job.key() for piece in slices for job in piece}
            assert len(seen) == len(jobs)
            assert coverage_check(jobs, num_shards)

    def test_assignment_is_stable_and_range_based(self):
        jobs = self.grid()
        for job in jobs:
            index = shard_of_key(job.key(), 4)
            low, high = shard_bounds(index, 4)
            assert low <= job.key()[:8] <= high

    def test_shard_campaign_names_slice(self):
        campaign = Campaign(name="mc", jobs=tuple(self.grid()))
        piece = shard_campaign(campaign, 4, 1)
        assert piece.name == "mc#shard-2-of-4"
        assert set(piece.jobs) <= set(campaign.jobs)

    def test_parse_shard(self):
        assert parse_shard("1/4") == (0, 4)
        assert parse_shard("4/4") == (3, 4)
        for bad in ("0/4", "5/4", "x/4", "2", "2/0", "-1/3"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_sharded_execution_merges_through_cache(self, tmp_path):
        """Each shard runs separately against the shared cache; the final
        unsharded pass is served entirely from cache."""
        jobs = self.grid()[:12]
        cache_dir = tmp_path / "cache"
        for index in range(3):
            runner = CampaignRunner(
                backend=SerialBackend(), cache=ResultCache(cache_dir)
            )
            runner.run(shard_jobs(jobs, 3, index))
        merged = CampaignRunner(
            backend=SerialBackend(), cache=ResultCache(cache_dir)
        ).run(jobs)
        assert merged.cache_hits == len(jobs)
        assert merged.executed == 0
        assert merged.results == serial_results(jobs)


class TestCLI:
    def test_no_cache_with_spool_backend_fails_fast(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "campaign", "--backend", "spool", "--no-cache",
                "--rates", "0.003", "--quiet",
            ])
        # A clean argparse usage error (exit 2) on stderr, no traceback,
        # and crucially no simulation ran.
        assert excinfo.value.code == 2
        assert "content-addressed cache" in capsys.readouterr().err

    def test_no_cache_with_spool_montecarlo_fails_fast(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "montecarlo", "--backend", "spool", "--no-cache",
                "--k", "2", "--samples", "2", "--quiet",
            ])
        assert excinfo.value.code == 2

    def test_worker_subcommand_drains_spool(self, tmp_path, capsys):
        from repro.cli import main

        jobs = reachability_jobs(2)
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue(jobs)
        cache_dir = tmp_path / "cache"
        code = main([
            "worker", str(tmp_path / "spool"),
            "--cache-dir", str(cache_dir),
            "--idle-timeout", "0.2", "--worker-id", "cli-worker",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 job(s) executed" in out
        assert [ResultCache(cache_dir).get(job) for job in jobs] == serial_results(jobs)

    def test_campaign_shard_flag(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "campaign", "--system", "4", "--algo", "rc",
            "--rates", "0.003", "--seeds", "2",
            "--warmup", "30", "--cycles", "100", "--drain", "1200",
            "--shard", "1/2", "--cache-dir", str(tmp_path / "cache"),
            "--quiet",
        ])
        assert code == 0
        assert "#shard-1-of-2" in capsys.readouterr().out

    def test_campaign_spool_backend_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "campaign", "--system", "4", "--algo", "rc",
            "--rates", "0.003", "--seeds", "1",
            "--warmup", "30", "--cycles", "100", "--drain", "1200",
            "--backend", "spool", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"), "--quiet",
        ])
        assert code == 0
        assert "1 executed" in capsys.readouterr().out
