"""Fault-scenario enumeration and the offline selection tables."""

import math

import pytest

from repro.core.fault_scenarios import enumerate_chiplet_scenarios, scenario_count
from repro.core.tables import build_selection_tables, distance_tables
from repro.core.vl_selection import vl_loads


class TestScenarioEnumeration:
    def test_paper_count_for_four_vls(self):
        # C(4,1) + C(4,2) + C(4,3) = 14 (Section III-B).
        assert scenario_count(4) == 14
        assert scenario_count(4, include_fault_free=True) == 15

    def test_counts_for_other_sizes(self):
        for v in (1, 2, 3, 5):
            expected = sum(math.comb(v, k) for k in range(1, v))
            assert scenario_count(v) == expected

    def test_enumeration_yields_distinct_scenarios(self):
        scenarios = list(enumerate_chiplet_scenarios(4))
        assert len(scenarios) == 15
        assert len(set(scenarios)) == 15
        assert frozenset() in scenarios

    def test_all_faulty_scenario_excluded(self):
        scenarios = set(enumerate_chiplet_scenarios(4))
        assert frozenset({0, 1, 2, 3}) not in scenarios

    def test_without_fault_free(self):
        scenarios = list(enumerate_chiplet_scenarios(4, include_fault_free=False))
        assert frozenset() not in scenarios
        assert len(scenarios) == 14

    def test_rejects_zero_vls(self):
        with pytest.raises(ValueError):
            list(enumerate_chiplet_scenarios(0))


class TestSelectionTables:
    @pytest.fixture(scope="class")
    def tables(self, system4):
        return build_selection_tables(system4)

    def test_one_table_per_chiplet(self, tables, system4):
        assert set(tables) == set(range(system4.spec.num_chiplets))

    def test_fifteen_entries_per_table(self, tables):
        for table in tables.values():
            assert table.num_entries == 15

    def test_selections_avoid_faulty_vls(self, tables):
        for table in tables.values():
            for scenario, selection in table.entries.items():
                assert not (set(selection) & set(scenario))

    def test_selection_covers_all_routers(self, tables, system4):
        for chiplet, table in tables.items():
            expected = len(system4.chiplet_routers(chiplet))
            for selection in table.entries.values():
                assert len(selection) == expected

    def test_fault_free_selection_is_balanced(self, tables):
        from collections import Counter

        for table in tables.values():
            counts = Counter(table.lookup(frozenset()))
            assert sorted(counts.values()) == [4, 4, 4, 4]

    def test_single_fault_selection_rebalances(self, tables):
        """The optimized tables avoid the naive 8/4/4 split of Fig. 3(b)."""
        from collections import Counter

        for table in tables.values():
            counts = Counter(table.lookup(frozenset({0})))
            assert max(counts.values()) <= 6

    def test_lookup_unknown_scenario_raises(self, tables):
        with pytest.raises(KeyError):
            tables[0].lookup(frozenset({0, 1, 2, 3}))

    def test_costs_recorded(self, tables):
        table = tables[0]
        assert table.costs[frozenset()] >= 0.0

    def test_table_bits(self, tables):
        # 15 entries x 2 address bits for 4 VLs.
        assert tables[0].table_bits(num_vls=4) == 30

    @pytest.mark.slow
    def test_traffic_aware_tables_differ(self, system4):
        heavy_router = system4.chiplet_routers(0)[0].id

        def traffic(router_id: int) -> float:
            return 10.0 if router_id == heavy_router else 1.0

        weighted = build_selection_tables(system4, traffic_of_router=traffic)
        uniform = build_selection_tables(system4)
        assert (
            weighted[0].lookup(frozenset({0})) != uniform[0].lookup(frozenset({0}))
            or weighted[0].lookup(frozenset()) != uniform[0].lookup(frozenset())
        )


class TestDistanceTables:
    def test_same_interface(self, system4):
        tables = distance_tables(system4)
        assert tables[0].num_entries == 15

    def test_fault_free_matches_nearest(self, system4):
        tables = distance_tables(system4)
        selection = tables[0].lookup(frozenset())
        routers = system4.chiplet_routers(0)
        links = system4.vls_of_chiplet(0)
        for router, chosen in zip(routers, selection):
            best = min(
                links,
                key=lambda l: (abs(router.x - l.cx) + abs(router.y - l.cy), l.local_index),
            )
            assert chosen == best.local_index

    def test_faulted_entries_avoid_fault(self, system4):
        tables = distance_tables(system4)
        for scenario, selection in tables[0].entries.items():
            assert not (set(selection) & set(scenario))
