"""Test package marker.

Makes ``tests`` importable as a package so intra-suite helpers
(``tests/routing_helpers.py``) can be imported relatively from test
modules regardless of pytest's import mode.
"""
