"""End-to-end integration: every algorithm x traffic pattern, faults,
cross-module consistency between the simulator and the analyses."""

import pytest

from repro.config import SimulationConfig
from repro.fault.model import chiplet_fault_pattern
from repro.network.simulator import Simulator
from repro.routing.registry import available_algorithms, make_algorithm
from repro.analysis.reachability import reachability_of_state
from repro.traffic.parsec import APP_PROFILES, ParsecLikeTraffic
from repro.traffic.synthetic import (
    BitComplementTraffic,
    HotspotTraffic,
    LocalizedTraffic,
    TransposeTraffic,
    UniformTraffic,
)

TRAFFIC_CLASSES = [
    UniformTraffic,
    LocalizedTraffic,
    HotspotTraffic,
    TransposeTraffic,
    BitComplementTraffic,
]


class TestAllAlgorithmsAllTraffic:
    @pytest.mark.parametrize("algo_name", ["deft", "deft-dis", "deft-ran", "mtr", "rc"])
    @pytest.mark.parametrize("traffic_cls", TRAFFIC_CLASSES)
    def test_delivers_everything_fault_free(self, system4, fast_config, algo_name, traffic_cls):
        algorithm = make_algorithm(algo_name, system4)
        traffic = traffic_cls(system4, 0.004, seed=2)
        report = Simulator(system4, algorithm, traffic, fast_config).run()
        assert not report.deadlocked
        assert report.stats.packets_dropped_unroutable == 0
        assert report.stats.delivered_ratio == 1.0
        assert report.stats.average_latency > 0

    def test_registry_covers_all_names(self):
        assert set(available_algorithms()) == {
            "deft", "deft-dis", "deft-ran", "deft-ada", "mtr", "rc",
        }


class TestSixChipletSystem:
    @pytest.mark.parametrize("algo_name", ["deft", "mtr", "rc"])
    def test_uniform_delivery(self, system6, fast_config, algo_name):
        algorithm = make_algorithm(algo_name, system6)
        traffic = UniformTraffic(system6, 0.004, seed=3)
        report = Simulator(system6, algorithm, traffic, fast_config).run()
        assert not report.deadlocked
        assert report.stats.delivered_ratio == 1.0


class TestSimulatorMatchesAnalyticalReachability:
    """The in-simulator delivered ratio must equal the analytical
    reachability of the injected fault pattern (uniform traffic)."""

    @pytest.mark.parametrize("algo_name", ["deft", "mtr", "rc"])
    def test_under_two_down_faults(self, system4, algo_name):
        state = chiplet_fault_pattern(system4, 0, down_faulty=[0, 2])
        algorithm = make_algorithm(algo_name, system4)
        expected = reachability_of_state(system4, algorithm, state)
        algorithm.set_fault_state(state)
        config = SimulationConfig(
            warmup_cycles=100, measure_cycles=2_500, drain_cycles=8_000, seed=5
        )
        traffic = UniformTraffic(system4, 0.004, seed=5)
        report = Simulator(system4, algorithm, traffic, config).run()
        assert not report.deadlocked
        assert report.stats.delivered_ratio == pytest.approx(expected, abs=0.02)


class TestFaultedSimulationsStayDeadlockFree:
    @pytest.mark.parametrize("algo_name", ["deft", "deft-dis", "deft-ran"])
    def test_heavy_fault_pattern(self, system4, fast_config, algo_name):
        state = chiplet_fault_pattern(system4, 0, down_faulty=[0, 1, 2]).with_faults(
            chiplet_fault_pattern(system4, 1, up_faulty=[0, 1, 3]).faults
        )
        algorithm = make_algorithm(algo_name, system4)
        algorithm.set_fault_state(state)
        traffic = UniformTraffic(system4, 0.006, seed=7)
        report = Simulator(system4, algorithm, traffic, fast_config).run()
        assert not report.deadlocked
        assert report.stats.delivered_ratio == 1.0  # DeFT: 100% reachability


class TestParsecWorkloads:
    @pytest.mark.parametrize("app", ["FL", "ST"])
    def test_single_app_runs_on_all_algorithms(self, system4, fast_config, app):
        for algo_name in ("deft", "mtr", "rc"):
            algorithm = make_algorithm(algo_name, system4)
            traffic = ParsecLikeTraffic(system4, APP_PROFILES[app], seed=2)
            report = Simulator(system4, algorithm, traffic, fast_config).run()
            assert not report.deadlocked
            assert report.stats.packets_delivered > 0


class TestLatencyOrderingUnderLoad:
    @pytest.mark.slow
    def test_deft_beats_baselines_at_high_uniform_load(self, system4):
        """The headline of Fig. 4 at a single high-load point."""
        config = SimulationConfig(
            warmup_cycles=300, measure_cycles=1_500, drain_cycles=12_000, seed=11
        )
        latencies = {}
        for algo_name in ("deft", "mtr", "rc"):
            algorithm = make_algorithm(algo_name, system4)
            traffic = UniformTraffic(system4, 0.010, seed=11)
            report = Simulator(system4, algorithm, traffic, config).run()
            latencies[algo_name] = report.stats.average_latency
        assert latencies["deft"] < latencies["mtr"]
        assert latencies["deft"] < latencies["rc"]

    def test_rc_pays_serialization_even_at_low_load(self, system4, fast_config):
        latencies = {}
        for algo_name in ("deft", "rc"):
            algorithm = make_algorithm(algo_name, system4)
            traffic = UniformTraffic(system4, 0.002, seed=4)
            report = Simulator(system4, algorithm, traffic, fast_config).run()
            latencies[algo_name] = report.stats.average_latency
        assert latencies["rc"] > latencies["deft"] + 5


class TestVcUtilizationIntegration:
    def test_deft_balanced_baselines_unbalanced(self, system4):
        config = SimulationConfig(
            warmup_cycles=200, measure_cycles=1_500, drain_cycles=8_000, seed=9
        )
        utils = {}
        for algo_name in ("deft", "mtr"):
            algorithm = make_algorithm(algo_name, system4)
            traffic = UniformTraffic(system4, 0.006, seed=9)
            report = Simulator(system4, algorithm, traffic, config).run()
            utils[algo_name] = report.stats.vc_utilization_report()
        # DeFT interposer split close to even; MTR pins interposer to VC0.
        assert abs(utils["deft"]["interposer"][0] - 0.5) < 0.05
        assert utils["mtr"]["interposer"][0] > 0.95
