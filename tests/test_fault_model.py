"""Fault-state queries, scenario enumeration, random sampling."""

import math
import random

import pytest

from repro.errors import FaultModelError
from repro.fault.model import (
    DirectedVL,
    FaultState,
    VLDirection,
    all_fault_patterns,
    chiplet_fault_pattern,
    fault_free,
    random_fault_state,
)


class TestFaultStateBasics:
    def test_empty_state(self, system4):
        state = fault_free(system4)
        assert state.num_faults == 0
        assert not state.disconnects_any_chiplet()
        for link in system4.vls:
            assert state.down_ok(link.index)
            assert state.up_ok(link.index)

    def test_directed_faults_are_independent(self, system4):
        state = FaultState(system4, [DirectedVL(0, VLDirection.DOWN)])
        assert not state.down_ok(0)
        assert state.up_ok(0)

    def test_alive_lists(self, system4):
        state = chiplet_fault_pattern(system4, 0, down_faulty=[0, 2])
        assert state.alive_down_vls(0) == (1, 3)
        assert state.alive_up_vls(0) == (0, 1, 2, 3)
        assert state.alive_down_vls(1) == (0, 1, 2, 3)

    def test_patterns(self, system4):
        state = chiplet_fault_pattern(system4, 2, down_faulty=[1], up_faulty=[0, 3])
        assert state.chiplet_down_pattern(2) == frozenset({1})
        assert state.chiplet_up_pattern(2) == frozenset({0, 3})
        assert state.chiplet_down_pattern(0) == frozenset()

    def test_disconnection_detection(self, system4):
        state = chiplet_fault_pattern(system4, 1, down_faulty=[0, 1, 2, 3])
        assert state.disconnects_any_chiplet()
        state = chiplet_fault_pattern(system4, 1, up_faulty=[0, 1, 2, 3])
        assert state.disconnects_any_chiplet()
        state = chiplet_fault_pattern(system4, 1, down_faulty=[0, 1, 2], up_faulty=[3])
        assert not state.disconnects_any_chiplet()

    def test_rejects_unknown_vl(self, system4):
        with pytest.raises(FaultModelError):
            FaultState(system4, [DirectedVL(99, VLDirection.DOWN)])

    def test_chiplet_pattern_rejects_unknown_local_index(self, system4):
        with pytest.raises(FaultModelError):
            chiplet_fault_pattern(system4, 0, down_faulty=[7])

    def test_with_faults_extends(self, system4):
        base = FaultState(system4, [DirectedVL(0, VLDirection.DOWN)])
        extended = base.with_faults([DirectedVL(1, VLDirection.UP)])
        assert extended.num_faults == 2
        assert base.num_faults == 1

    def test_equality_and_hash(self, system4):
        a = FaultState(system4, [DirectedVL(3, VLDirection.UP)])
        b = FaultState(system4, [DirectedVL(3, VLDirection.UP)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != fault_free(system4)


class TestPatternEnumeration:
    def test_count_without_exclusion(self, system4):
        patterns = list(all_fault_patterns(system4, 1, exclude_disconnecting=False))
        assert len(patterns) == 32  # every directed channel

    def test_single_fault_never_disconnects(self, system4):
        with_exclusion = list(all_fault_patterns(system4, 1))
        assert len(with_exclusion) == 32

    def test_exclusion_removes_disconnecting_patterns(self, system4):
        total = math.comb(32, 4)
        kept = sum(1 for _ in all_fault_patterns(system4, 4))
        # 8 groups (4 chiplets x up/down) of 4 channels can be fully faulty.
        assert kept == total - 8

    def test_all_patterns_have_requested_size(self, system4):
        for state in all_fault_patterns(system4, 2):
            assert state.num_faults == 2


class TestRandomFaultState:
    def test_deterministic_for_seeded_rng(self, system4):
        a = random_fault_state(system4, 5, random.Random(3))
        b = random_fault_state(system4, 5, random.Random(3))
        assert a == b

    def test_respects_exclusion(self, system4):
        rng = random.Random(11)
        for _ in range(50):
            state = random_fault_state(system4, 8, rng)
            assert not state.disconnects_any_chiplet()
            assert state.num_faults == 8

    def test_rejects_impossible_count(self, system4):
        with pytest.raises(FaultModelError):
            random_fault_state(system4, 33, random.Random(0))
