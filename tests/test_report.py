"""Consolidated result reporting (`deft report`)."""

import json

import pytest

from repro.experiments.report import RecordedArtifact, load_recorded, render_summary


def _write(dirpath, experiment, checks, data=None, title="t"):
    payload = {
        "experiment": experiment,
        "title": title,
        "data": data or {},
        "checks": [{"description": f"c{i}", "passed": ok} for i, ok in enumerate(checks)],
    }
    (dirpath / f"{experiment}.json").write_text(json.dumps(payload))


class TestLoadRecorded:
    def test_empty_directory(self, tmp_path):
        assert load_recorded(tmp_path) == []

    def test_orders_like_the_paper(self, tmp_path):
        _write(tmp_path, "table1", [True])
        _write(tmp_path, "fig4a", [True, True])
        _write(tmp_path, "fig7a", [True])
        artifacts = load_recorded(tmp_path)
        assert [a.experiment_id for a in artifacts] == ["fig4a", "fig7a", "table1"]

    def test_counts_checks(self, tmp_path):
        _write(tmp_path, "fig4a", [True, False, True])
        artifact = load_recorded(tmp_path)[0]
        assert artifact.checks_passed == 2
        assert artifact.checks_total == 3
        assert not artifact.ok

    def test_headline_fig4(self, tmp_path):
        data = {
            "deft": {"rates": [0.1], "latency": [50.0]},
            "mtr": {"rates": [0.1], "latency": [100.0]},
            "rc": {"rates": [0.1], "latency": [120.0]},
        }
        _write(tmp_path, "fig4a", [True], data)
        assert "DeFT 50c vs MTR 100c" in load_recorded(tmp_path)[0].headline

    def test_headline_table1(self, tmp_path):
        data = {
            "DeFT": {"area_um2": 46651.0},
            "MTR": {"area_um2": 45878.0},
        }
        _write(tmp_path, "table1", [True], data)
        assert "+1.7% area" in load_recorded(tmp_path)[0].headline

    def test_headline_survives_malformed_data(self, tmp_path):
        _write(tmp_path, "fig4a", [True], {"bogus": 1})
        assert load_recorded(tmp_path)[0].headline == ""


class TestRenderSummary:
    def test_no_results_message(self):
        assert "no recorded results" in render_summary([])

    def test_flags_failures(self):
        artifacts = [
            RecordedArtifact("fig4a", "t", 2, 2, "fine"),
            RecordedArtifact("fig5", "t", 1, 3, "bad"),
        ]
        text = render_summary(artifacts)
        assert "FAILING" in text
        assert "3/5 shape checks pass" in text

    def test_cli_report_on_real_results(self, capsys):
        """The repository's own recorded results must all pass."""
        import pathlib

        from repro.cli import main

        results = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
        if not results.exists() or not list(results.glob("*.json")):
            pytest.skip("no recorded benchmark results yet")
        code = main(["report", "--results", str(results)])
        out = capsys.readouterr().out
        assert "shape checks pass" in out
        assert code == 0
