"""Shared fixtures for the test-suite.

Systems are session-scoped (topology objects are immutable in practice);
simulation configs are small enough for CI while still exercising
contention (buffers shallower than packets, multi-packet overlap).
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.topology.presets import (
    baseline_4_chiplets,
    baseline_6_chiplets,
    chiplet_grid,
    single_chiplet,
)


@pytest.fixture(scope="session")
def system4():
    return baseline_4_chiplets()


@pytest.fixture(scope="session")
def system6():
    return baseline_6_chiplets()


@pytest.fixture(scope="session")
def system2():
    """A small 2-chiplet system for cheap integration tests."""
    return chiplet_grid(2, 1, name="two-chiplets")


@pytest.fixture(scope="session")
def lone_chiplet():
    return single_chiplet()


@pytest.fixture()
def fast_config():
    """Short but contention-capable simulation window."""
    return SimulationConfig(
        warmup_cycles=100,
        measure_cycles=500,
        drain_cycles=6_000,
        watchdog_cycles=4_000,
        seed=7,
    )
