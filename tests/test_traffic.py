"""Synthetic traffic generators and trace replay."""

import pytest

from repro.errors import ConfigurationError
from repro.traffic.base import TraceEntry, TraceTraffic
from repro.traffic.synthetic import (
    BitComplementTraffic,
    HotspotTraffic,
    LocalizedTraffic,
    TransposeTraffic,
    UniformTraffic,
)


def _drain(generator, cycles=2000):
    packets = []
    for cycle in range(cycles):
        packets.extend(generator.packets_for_cycle(cycle))
    return packets


class TestUniform:
    def test_rate_zero_generates_nothing(self, system4):
        assert _drain(UniformTraffic(system4, 0.0)) == []

    def test_rejects_out_of_range_rate(self, system4):
        with pytest.raises(ConfigurationError):
            UniformTraffic(system4, -0.1)
        with pytest.raises(ConfigurationError):
            UniformTraffic(system4, 1.5)

    def test_sources_and_destinations_are_cores(self, system4):
        packets = _drain(UniformTraffic(system4, 0.01, seed=2))
        cores = set(system4.cores)
        assert packets
        for src, dst in packets:
            assert src in cores
            assert dst in cores
            assert src != dst

    def test_rate_is_respected(self, system4):
        cycles = 3000
        packets = []
        gen = UniformTraffic(system4, 0.01, seed=3)
        for cycle in range(cycles):
            packets.extend(gen.packets_for_cycle(cycle))
        expected = 0.01 * len(system4.cores) * cycles
        assert expected * 0.85 < len(packets) < expected * 1.15

    def test_deterministic_per_seed(self, system4):
        a = _drain(UniformTraffic(system4, 0.01, seed=9), 500)
        b = _drain(UniformTraffic(system4, 0.01, seed=9), 500)
        assert a == b

    def test_different_seeds_differ(self, system4):
        a = _drain(UniformTraffic(system4, 0.01, seed=1), 500)
        b = _drain(UniformTraffic(system4, 0.01, seed=2), 500)
        assert a != b

    def test_destinations_cover_the_system(self, system4):
        packets = _drain(UniformTraffic(system4, 0.02, seed=5), 3000)
        destinations = {dst for _, dst in packets}
        assert len(destinations) > len(system4.cores) * 0.9


class TestLocalized:
    def test_local_fraction_matches_configuration(self, system4):
        gen = LocalizedTraffic(system4, 0.02, seed=4, local_fraction=0.4)
        packets = _drain(gen, 4000)
        local = sum(1 for s, d in packets if system4.same_chiplet(s, d))
        fraction = local / len(packets)
        assert 0.35 < fraction < 0.45

    def test_nonlocal_packets_cross_chiplets(self, system4):
        gen = LocalizedTraffic(system4, 0.02, seed=4, local_fraction=0.0)
        packets = _drain(gen, 500)
        assert packets
        for s, d in packets:
            assert not system4.same_chiplet(s, d)

    def test_rejects_bad_fraction(self, system4):
        with pytest.raises(ConfigurationError):
            LocalizedTraffic(system4, 0.01, local_fraction=1.5)


class TestHotspot:
    def test_hotspots_receive_extra_traffic(self, system4):
        gen = HotspotTraffic(system4, 0.02, seed=6)
        packets = _drain(gen, 4000)
        hotspot_share = sum(1 for _, d in packets if d in gen.hotspots) / len(packets)
        # 3 hotspots at 10% each plus their share of uniform background.
        assert hotspot_share > 0.25

    def test_default_hotspots_are_cores(self, system4):
        gen = HotspotTraffic(system4, 0.01)
        assert set(gen.hotspots) <= set(system4.cores)
        assert len(gen.hotspots) == 3

    def test_custom_hotspots(self, system4):
        spots = (system4.cores[0], system4.cores[10])
        gen = HotspotTraffic(system4, 0.01, hotspots=spots, hotspot_rate=0.2)
        assert gen.hotspots == spots

    def test_rejects_oversubscribed_hotspots(self, system4):
        with pytest.raises(ConfigurationError):
            HotspotTraffic(
                system4, 0.01, hotspots=tuple(system4.cores[:6]), hotspot_rate=0.2
            )

    def test_rejects_empty_hotspots(self, system4):
        with pytest.raises(ConfigurationError):
            HotspotTraffic(system4, 0.01, hotspots=())


class TestTranspose:
    def test_partners_are_transposed(self, system4):
        gen = TransposeTraffic(system4, 0.05, seed=1)
        packets = _drain(gen, 300)
        routers = system4.routers
        transposed = 0
        for src, dst in packets:
            if (routers[src].gx, routers[src].gy) == (routers[dst].gy, routers[dst].gx):
                transposed += 1
        assert transposed / len(packets) > 0.8  # diagonal cores fall back


class TestBitComplement:
    def test_partner_mapping_is_involution(self, system4):
        gen = BitComplementTraffic(system4, 0.05)
        for core in system4.cores:
            partner = gen._partner[core]
            assert gen._partner[partner] == core


class TestTraceTraffic:
    def test_replay_by_cycle(self):
        trace = TraceTraffic([
            TraceEntry(5, 1, 2),
            TraceEntry(5, 3, 4),
            TraceEntry(7, 1, 4),
        ])
        assert trace.packets_for_cycle(5) == [(1, 2), (3, 4)]
        assert trace.packets_for_cycle(6) == []
        assert trace.packets_for_cycle(7) == [(1, 4)]
        assert trace.num_packets == 3

    def test_repeat_period(self):
        trace = TraceTraffic([TraceEntry(1, 0, 2)], repeat_period=10)
        assert trace.packets_for_cycle(11) == [(0, 2)]
        assert trace.packets_for_cycle(21) == [(0, 2)]
