"""Geometry primitives: directions, manhattan distance, XY route helpers."""

import pytest

from repro.topology.geometry import (
    Direction,
    direction_between,
    manhattan,
    opposite,
    xy_arrival_direction,
    xy_departure_direction,
    xy_first_step,
    xy_path,
)


class TestDirections:
    def test_deltas(self):
        assert (Direction.EAST.dx, Direction.EAST.dy) == (1, 0)
        assert (Direction.WEST.dx, Direction.WEST.dy) == (-1, 0)
        assert (Direction.NORTH.dx, Direction.NORTH.dy) == (0, -1)
        assert (Direction.SOUTH.dx, Direction.SOUTH.dy) == (0, 1)

    def test_opposites_are_involutive(self):
        for direction in Direction:
            assert opposite(opposite(direction)) is direction

    def test_opposite_pairs(self):
        assert opposite(Direction.EAST) is Direction.WEST
        assert opposite(Direction.NORTH) is Direction.SOUTH


class TestManhattan:
    def test_zero_for_same_point(self):
        assert manhattan(3, 2, 3, 2) == 0

    def test_matches_paper_equation_4(self):
        # |xr - xv| + |yr - yv|
        assert manhattan(0, 0, 3, 2) == 5
        assert manhattan(2, 3, 1, 0) == 4


class TestDirectionBetween:
    @pytest.mark.parametrize("b,expected", [
        ((1, 0), Direction.EAST),
        ((-1, 0), Direction.WEST),
        ((0, -1), Direction.NORTH),
        ((0, 1), Direction.SOUTH),
    ])
    def test_neighbours(self, b, expected):
        assert direction_between(0, 0, b[0], b[1]) is expected

    def test_rejects_non_neighbours(self):
        with pytest.raises(ValueError):
            direction_between(0, 0, 2, 0)
        with pytest.raises(ValueError):
            direction_between(0, 0, 1, 1)
        with pytest.raises(ValueError):
            direction_between(0, 0, 0, 0)


class TestXyRouting:
    def test_first_step_prefers_x(self):
        assert xy_first_step(0, 0, 3, 3) is Direction.EAST
        assert xy_first_step(3, 0, 0, 3) is Direction.WEST

    def test_first_step_y_when_aligned(self):
        assert xy_first_step(2, 3, 2, 0) is Direction.NORTH
        assert xy_first_step(2, 0, 2, 2) is Direction.SOUTH

    def test_first_step_rejects_identity(self):
        with pytest.raises(ValueError):
            xy_first_step(1, 1, 1, 1)

    def test_path_is_x_then_y(self):
        path = xy_path(0, 0, 2, 1)
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1)]

    def test_path_length_is_manhattan_plus_one(self):
        for (ax, ay, bx, by) in [(0, 0, 3, 3), (2, 1, 0, 0), (1, 1, 1, 1)]:
            path = xy_path(ax, ay, bx, by)
            assert len(path) == manhattan(ax, ay, bx, by) + 1
            assert path[0] == (ax, ay)
            assert path[-1] == (bx, by)

    def test_path_steps_are_unit_moves(self):
        path = xy_path(3, 2, 0, 0)
        for (x0, y0), (x1, y1) in zip(path, path[1:]):
            assert abs(x1 - x0) + abs(y1 - y0) == 1

    def test_arrival_direction_vertical_leg(self):
        # x handled first, so arrival is vertical when y differs.
        assert xy_arrival_direction(0, 0, 2, 2) is Direction.SOUTH
        assert xy_arrival_direction(0, 3, 2, 0) is Direction.NORTH

    def test_arrival_direction_horizontal_when_same_row(self):
        assert xy_arrival_direction(0, 1, 3, 1) is Direction.EAST
        assert xy_arrival_direction(3, 1, 0, 1) is Direction.WEST

    def test_arrival_rejects_identity(self):
        with pytest.raises(ValueError):
            xy_arrival_direction(1, 1, 1, 1)

    def test_departure_matches_first_step(self):
        assert xy_departure_direction(0, 0, 2, 2) is xy_first_step(0, 0, 2, 2)
