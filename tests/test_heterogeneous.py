"""Heterogeneous 2.5D systems: mixed chiplet sizes and VL counts.

The paper's Section II-B notes that "the chiplet and interposer sizes may
also be different, which makes the topology more irregular than 3D
networks" — the library must handle such floorplans end to end, not just
the uniform presets.
"""

import pytest

from repro.analysis.cdg import build_cdg
from repro.analysis.reachability import (
    average_reachability,
    brute_force_reachability,
    worst_reachability,
)
from repro.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.routing.deft import DeftRouting
from repro.routing.mtr import MtrRouting
from repro.routing.rc import RcRouting
from repro.topology.builder import build_system
from repro.topology.spec import ChipletSpec, SystemSpec
from repro.traffic.synthetic import UniformTraffic

from .routing_helpers import walk_packet


@pytest.fixture(scope="module")
def hetero_system():
    """A big 6x4 chiplet (6 VLs) next to a small 3x3 chiplet (2 VLs),
    over a 10x5 interposer with one DRAM."""
    big = ChipletSpec(
        origin=(0, 0), width=6, height=4,
        vl_positions=((1, 0), (4, 0), (0, 2), (5, 2), (2, 3), (3, 3)),
    )
    small = ChipletSpec(
        origin=(6, 1), width=3, height=3,
        vl_positions=((1, 0), (1, 2)),
    )
    spec = SystemSpec(
        chiplets=(big, small),
        interposer_width=10,
        interposer_height=5,
        dram_positions=((9, 4),),
        name="hetero-2-chiplets",
    )
    return build_system(spec)


class TestHeterogeneousTopology:
    def test_counts(self, hetero_system):
        assert hetero_system.spec.num_cores == 24 + 9
        assert len(hetero_system.vls) == 8
        assert len(hetero_system.vls_of_chiplet(0)) == 6
        assert len(hetero_system.vls_of_chiplet(1)) == 2

    def test_selection_tables_adapt_to_vl_counts(self, hetero_system):
        algo = DeftRouting(hetero_system)
        # 6 VLs: sum C(6,k) k=0..5 = 2^6 - 1 = 63 entries; 2 VLs: 3.
        assert algo.tables[0].num_entries == 63
        assert algo.tables[1].num_entries == 3

    def test_deft_routes_all_pairs(self, hetero_system):
        algo = DeftRouting(hetero_system)
        cores = hetero_system.cores[::4]
        for src in cores:
            for dst in cores:
                if src != dst:
                    path, _ = walk_packet(
                        hetero_system, algo, src, dst, verify_vn_rules=True
                    )
                    assert path[-1] == dst

    @pytest.mark.parametrize("factory", [DeftRouting, MtrRouting, RcRouting])
    def test_cdg_acyclic(self, hetero_system, factory):
        report = build_cdg(hetero_system, factory(hetero_system))
        assert report.is_acyclic

    @pytest.mark.parametrize("factory", [DeftRouting, MtrRouting, RcRouting])
    def test_simulation_delivers(self, hetero_system, factory):
        config = SimulationConfig(
            warmup_cycles=100, measure_cycles=500, drain_cycles=6_000, seed=2
        )
        algo = factory(hetero_system)
        traffic = UniformTraffic(hetero_system, 0.004, seed=2)
        report = Simulator(hetero_system, algo, traffic, config).run()
        assert not report.deadlocked
        assert report.stats.delivered_ratio == 1.0

    def test_reachability_decomposition_still_exact(self, hetero_system):
        """The per-chiplet DP handles asymmetric chiplet profiles."""
        for factory in (DeftRouting, RcRouting):
            algo = factory(hetero_system)
            avg = average_reachability(hetero_system, algo, 2)
            wrst = worst_reachability(hetero_system, algo, 2)
            brute_avg, brute_wrst = brute_force_reachability(hetero_system, algo, 2)
            assert avg == pytest.approx(brute_avg, abs=1e-12)
            assert wrst == pytest.approx(brute_wrst, abs=1e-12)

    def test_deft_tolerates_faults_on_small_chiplet(self, hetero_system):
        from repro.fault.model import chiplet_fault_pattern

        algo = DeftRouting(hetero_system)
        # Kill one of the small chiplet's two up channels.
        algo.set_fault_state(chiplet_fault_pattern(hetero_system, 1, up_faulty=[0]))
        src = hetero_system.chiplet_routers(0)[0].id
        for dst_router in hetero_system.chiplet_routers(1):
            assert algo.is_routable(src, dst_router.id)
            path, _ = walk_packet(hetero_system, algo, src, dst_router.id)
            assert path[-1] == dst_router.id
