"""Monte Carlo fault campaigns: spec, sampling, statistics, cross-checks."""

import json
import math

import pytest

from repro.analysis.reachability import average_reachability
from repro.errors import ConfigurationError
from repro.montecarlo import (
    montecarlo_jobs,
    normal_mean_interval,
    run_montecarlo,
    sample_mean_std,
    wilson_interval,
    z_value,
)
from repro.routing.registry import make_algorithm
from repro.runner import (
    CampaignRunner,
    Job,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    SystemRef,
    TrafficSpec,
    execute_job,
    sample_rng,
)
from repro.config import SimulationConfig

TINY = SimulationConfig(
    warmup_cycles=30, measure_cycles=120, drain_cycles=1_500, watchdog_cycles=2_000
)


def sample_job(k=2, index=0, seed=0, algorithm="rc", kind="reachability"):
    return Job.make(
        SystemRef.baseline4(),
        algorithm,
        TrafficSpec.make("uniform", rate=0.0 if kind == "reachability" else 0.004),
        TINY,
        seed=seed,
        faults_mode="sample",
        fault_k=k,
        fault_sample=index,
        kind=kind,
    )


class TestSampleSpec:
    def test_canonical_carries_sample_fields(self):
        data = sample_job(k=3, index=7).canonical()
        assert data["faults_mode"] == "sample"
        assert data["fault_k"] == 3
        assert data["fault_sample"] == 7
        assert data["kind"] == "reachability"

    def test_explicit_jobs_keep_their_legacy_canonical_form(self):
        """Pre-existing cache keys must survive the sample-mode extension."""
        data = Job.make(
            SystemRef.baseline4(), "deft",
            TrafficSpec.make("uniform", rate=0.004), TINY,
        ).canonical()
        assert "faults_mode" not in data
        assert "fault_k" not in data
        assert "kind" not in data

    def test_each_sample_index_is_a_distinct_key(self):
        keys = {sample_job(index=i).key() for i in range(5)}
        assert len(keys) == 5

    def test_seed_and_k_enter_the_key(self):
        assert sample_job(seed=0).key() != sample_job(seed=1).key()
        assert sample_job(k=2).key() != sample_job(k=3).key()

    def test_canonical_round_trip(self):
        job = sample_job(k=4, index=11)
        rebuilt = Job.from_canonical(json.loads(job.canonical_json()))
        assert rebuilt.key() == job.key()
        assert (rebuilt.faults_mode, rebuilt.fault_k, rebuilt.fault_sample,
                rebuilt.kind) == ("sample", 4, 11, "reachability")

    def test_sample_mode_rejects_explicit_faults(self):
        with pytest.raises(ConfigurationError):
            Job.make(
                SystemRef.baseline4(), "deft",
                TrafficSpec.make("uniform", rate=0.004), TINY,
                faults=((0, "down"),), faults_mode="sample", fault_k=2,
            )

    def test_sample_mode_needs_positive_k(self):
        with pytest.raises(ConfigurationError):
            Job.make(
                SystemRef.baseline4(), "deft",
                TrafficSpec.make("uniform", rate=0.004), TINY,
                faults_mode="sample", fault_k=0,
            )

    def test_sample_fields_rejected_in_explicit_mode(self):
        with pytest.raises(ConfigurationError):
            Job.make(
                SystemRef.baseline4(), "deft",
                TrafficSpec.make("uniform", rate=0.004), TINY, fault_k=2,
            )

    def test_unknown_mode_and_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Job.make(
                SystemRef.baseline4(), "deft",
                TrafficSpec.make("uniform", rate=0.004), TINY,
                faults_mode="exhaustive",
            )
        with pytest.raises(ConfigurationError):
            Job.make(
                SystemRef.baseline4(), "deft",
                TrafficSpec.make("uniform", rate=0.004), TINY, kind="magic",
            )


class TestSampledExecution:
    def test_sample_rng_is_deterministic(self):
        a = sample_rng(0, 2, 5)
        b = sample_rng(0, 2, 5)
        assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]
        assert sample_rng(0, 2, 5).random() != sample_rng(0, 2, 6).random()

    def test_reachability_kind_is_deterministic_and_analytic(self):
        job = sample_job(k=2, index=3)
        first, second = execute_job(job), execute_job(job)
        assert first.ok and second.ok
        assert 0.0 <= first.reachability <= 1.0
        assert first == second
        assert first.sampled_faults == second.sampled_faults
        assert len(first.sampled_faults) == 2
        assert first.packets_measured == 0  # no simulation ran

    def test_different_samples_draw_different_patterns(self):
        patterns = {
            execute_job(sample_job(index=i)).sampled_faults for i in range(6)
        }
        assert len(patterns) > 1

    def test_simulate_kind_records_sampled_pattern(self):
        result = execute_job(sample_job(k=1, kind="simulate", algorithm="deft"))
        assert result.ok
        assert len(result.sampled_faults) == 1
        assert result.average_latency > 0
        assert math.isnan(result.reachability)

    def test_infeasible_k_is_captured_not_raised(self):
        # 32 faults on 32 directed channels always disconnects a chiplet.
        result = execute_job(sample_job(k=32))
        assert not result.ok and "FaultModelError" in result.error


class TestStatistics:
    def test_sample_mean_std(self):
        mean, std = sample_mean_std([1.0, 2.0, 3.0, 4.0])
        assert mean == pytest.approx(2.5)
        assert std == pytest.approx(1.2909944, rel=1e-6)
        assert sample_mean_std([5.0]) == (5.0, 0.0)
        with pytest.raises(ValueError):
            sample_mean_std([])

    def test_normal_interval_shrinks_with_n(self):
        narrow = normal_mean_interval([0.4, 0.6] * 50)
        wide = normal_mean_interval([0.4, 0.6] * 2)
        assert narrow.half_width < wide.half_width
        assert narrow.contains(0.5) and narrow.center == pytest.approx(0.5)

    def test_normal_interval_clamps_to_support(self):
        ci = normal_mean_interval([1.0, 1.0, 0.0], clamp=(0.0, 1.0))
        assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_wilson_interval_known_value(self):
        ci = wilson_interval(8, 10)
        assert ci.center == pytest.approx(0.8)
        assert ci.low == pytest.approx(0.4901, abs=1e-3)
        assert ci.high == pytest.approx(0.9433, abs=1e-3)

    def test_wilson_edge_cases_stay_in_unit_interval(self):
        assert wilson_interval(0, 20).low == 0.0
        assert wilson_interval(20, 20).high == 1.0
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_unsupported_confidence_rejected(self):
        with pytest.raises(ValueError):
            z_value(0.80)


class TestMonteCarloCampaign:
    def test_jobs_validate_inputs(self):
        with pytest.raises(ValueError):
            montecarlo_jobs(SystemRef.baseline4(), "deft", 2, 0)
        with pytest.raises(ValueError):
            montecarlo_jobs(SystemRef.baseline4(), "deft", 2, 5, metric="power")

    def test_reachability_jobs_share_pinned_simulation_params(self):
        """Analytic jobs must not key on simulation knobs they ignore."""
        a = montecarlo_jobs(SystemRef.baseline4(), "rc", 2, 1, seed=0)[0]
        b = montecarlo_jobs(
            SystemRef.baseline4(), "rc", 2, 1, seed=0,
            traffic=TrafficSpec.make("hotspot", rate=0.9), config=TINY,
        )[0]
        assert a.key() == b.key()

    def test_sampled_mean_matches_exact_at_small_k(self, system4):
        """Fig. 7 cross-check: exact average inside the sampled 99% CI."""
        report = run_montecarlo(
            SystemRef.baseline4(), ("deft", "mtr", "rc"), (1, 2, 3), 60,
            seed=0, metric="reachability", confidence=0.99,
        )
        for point in report.results:
            exact = average_reachability(
                system4, make_algorithm(point.algorithm, system4), point.k
            )
            assert point.failed == 0 and point.completed == 60
            assert (
                point.primary.interval.contains(exact)
                or point.primary.mean == pytest.approx(exact, abs=1e-12)
            ), f"{point.algorithm} k={point.k}: {point.primary} vs exact {exact}"

    def test_deterministic_across_serial_and_process_backends(self):
        serial = run_montecarlo(
            SystemRef.baseline4(), ("rc",), (2,), 10, seed=3,
            runner=CampaignRunner(backend=SerialBackend()),
        )
        parallel = run_montecarlo(
            SystemRef.baseline4(), ("rc",), (2,), 10, seed=3,
            runner=CampaignRunner(backend=ProcessPoolBackend(workers=2)),
        )
        assert serial.results[0].values == parallel.results[0].values
        assert serial.results[0].primary == parallel.results[0].primary

    def test_rerun_served_from_cache(self, tmp_path):
        args = (SystemRef.baseline4(), ("rc", "mtr"), (2,), 25)
        cold = run_montecarlo(
            *args, seed=0, runner=CampaignRunner(cache=ResultCache(tmp_path))
        )
        warm = run_montecarlo(
            *args, seed=0, runner=CampaignRunner(cache=ResultCache(tmp_path))
        )
        assert cold.campaign.executed == 50 and cold.campaign.cache_hits == 0
        assert warm.campaign.executed == 0
        assert warm.campaign.hit_ratio >= 0.95
        assert [p.values for p in warm.results] == [p.values for p in cold.results]

    def test_latency_metric_reports_delivery_statistics(self):
        report = run_montecarlo(
            SystemRef.baseline4(), ("deft",), (1,), 4,
            seed=1, metric="latency",
            traffic=TrafficSpec.make("uniform", rate=0.004), config=TINY,
        )
        point = report.results[0]
        assert point.completed == 4 and point.failed == 0
        assert point.primary.mean > 0
        assert point.primary.worst >= point.primary.mean  # worst = max latency
        assert point.delivery is not None
        assert 0.0 < point.delivery.mean <= 1.0
        assert point.delivered_pool is not None
        assert point.delivered_pool.low <= point.delivery.mean <= 1.0

    def test_undelivered_latency_samples_counted_as_dropped(self):
        """ok-but-NaN samples must be reported, not silently excluded."""
        report = run_montecarlo(
            SystemRef.baseline4(), ("deft",), (1,), 2, seed=0, metric="latency",
            traffic=TrafficSpec.make("uniform", rate=0.0), config=TINY,
        )
        point = report.results[0]
        assert point.failed == 0
        assert point.dropped == 2 and point.completed == 0
        assert point.primary is None
        assert "without metric" in point.row()

    def test_all_samples_failed_yields_empty_point(self):
        report = run_montecarlo(
            SystemRef.baseline4(), ("rc",), (32,), 3, seed=0
        )
        point = report.results[0]
        assert point.failed == 3 and point.completed == 0
        assert point.primary is None
        assert "failed" in point.row()

    def test_result_for_lookup(self):
        report = run_montecarlo(SystemRef.baseline4(), ("rc",), (1,), 2, seed=0)
        assert report.result_for("rc", 1).algorithm == "rc"
        with pytest.raises(KeyError):
            report.result_for("deft", 1)


class TestAdaptiveStopping:
    def test_start_offset_extends_without_rekeying(self):
        """Sample i's cache key is the same whether drawn eagerly or lazily."""
        eager = montecarlo_jobs(SystemRef.baseline4(), "rc", 2, 10, seed=0)
        lazy = montecarlo_jobs(SystemRef.baseline4(), "rc", 2, 4, seed=0, start=6)
        assert [job.key() for job in lazy] == [job.key() for job in eager[6:]]
        with pytest.raises(ValueError):
            montecarlo_jobs(SystemRef.baseline4(), "rc", 2, 4, start=-1)

    def test_loose_target_stops_after_initial_batch(self):
        report = run_montecarlo(
            SystemRef.baseline4(), ("rc",), (2,), 8, seed=0,
            target_ci_width=0.9,
        )
        point = report.results[0]
        assert point.requested == 8 and point.completed == 8
        assert report.campaign.total == 8

    def test_tight_target_doubles_to_the_cap(self):
        report = run_montecarlo(
            SystemRef.baseline4(), ("mtr",), (4,), 6, seed=0,
            target_ci_width=1e-9, max_samples=20,
        )
        point = report.results[0]
        assert point.requested == 20  # 6 -> 12 -> 20 (capped)
        # Sample indices cover 0..19 exactly once across the rounds.
        indices = sorted(job.fault_sample for job in report.campaign.jobs)
        assert indices == list(range(20))

    def test_adaptive_estimates_match_fixed_run_at_same_n(self):
        adaptive = run_montecarlo(
            SystemRef.baseline4(), ("mtr",), (2,), 5, seed=1,
            target_ci_width=1e-9, max_samples=15,
        )
        fixed = run_montecarlo(SystemRef.baseline4(), ("mtr",), (2,), 15, seed=1)
        assert adaptive.results[0].values == fixed.results[0].values
        assert adaptive.results[0].primary == fixed.results[0].primary

    def test_adaptive_rounds_are_cache_incremental(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_montecarlo(
            SystemRef.baseline4(), ("rc",), (2,), 5, seed=0,
            target_ci_width=1e-9, max_samples=15,
            runner=CampaignRunner(cache=cache),
        )
        warm = run_montecarlo(
            SystemRef.baseline4(), ("rc",), (2,), 15, seed=0,
            runner=CampaignRunner(cache=ResultCache(tmp_path)),
        )
        assert warm.campaign.executed == 0
        assert warm.campaign.cache_hits == 15

    def test_latency_metric_stops_on_delivery_pool(self):
        report = run_montecarlo(
            SystemRef.baseline4(), ("deft",), (1,), 3, seed=1, metric="latency",
            traffic=TrafficSpec.make("uniform", rate=0.004), config=TINY,
            target_ci_width=0.9,
        )
        point = report.results[0]
        assert point.requested == 3  # wide target: first batch suffices

    def test_invalid_targets_rejected(self):
        with pytest.raises(ValueError):
            run_montecarlo(
                SystemRef.baseline4(), ("rc",), (1,), 4, target_ci_width=0.0
            )
        with pytest.raises(ValueError):
            run_montecarlo(
                SystemRef.baseline4(), ("rc",), (1,), 8,
                target_ci_width=0.1, max_samples=4,
            )
        with pytest.raises(ValueError):
            # max_samples is meaningless without a stopping target.
            run_montecarlo(SystemRef.baseline4(), ("rc",), (1,), 8, max_samples=16)


@pytest.mark.slow
class TestAcceptance:
    """The ISSUE acceptance spec: 200 samples at k=2 track the exact curve."""

    def test_k2_200_samples_within_ci_for_all_algorithms(self, system4):
        report = run_montecarlo(
            SystemRef.baseline4(), ("deft", "mtr", "rc"), (2,), 200,
            seed=0, metric="reachability",
        )
        for point in report.results:
            exact = average_reachability(
                system4, make_algorithm(point.algorithm, system4), 2
            )
            assert (
                point.primary.interval.contains(exact)
                or point.primary.mean == pytest.approx(exact, abs=1e-12)
            )


@pytest.mark.slow
class TestFig7mcExperiment:
    def test_validation_checks_pass(self):
        from repro.experiments import fig7mc

        result = fig7mc.fig7mc_validation(scale=0.2)
        assert result.all_checks_pass, result.failed_checks()
        assert result.data["samples"] == 100  # floor keeps the check meaningful

    def test_scale_extension_checks_pass(self):
        from repro.experiments import fig7mc

        result = fig7mc.fig7mc_scale(scale=0.35)
        assert result.all_checks_pass, result.failed_checks()
        ks = result.data["fault_counts"]
        assert max(ks) > 8  # genuinely beyond Fig. 7's exact range
