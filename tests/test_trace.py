"""Trace reconstruction: event streams -> span trees -> Chrome JSON.

Synthetic streams pin the stitching semantics exactly (phase layout,
clamping, requeue/renewal instants, campaign filtering, v1-stream
finish-without-claim synthesis); one real drained spool proves the
acceptance property — claim/setup/compile/simulate/publish spans for
every job, monotonic, loadable as Catapult ``trace_event`` JSON.
"""

import json

import pytest

from repro.distributed import Spool, run_worker
from repro.montecarlo import montecarlo_jobs
from repro.runner import Campaign, ResultCache, SystemRef
from repro.telemetry.manifest import write_campaign_manifest
from repro.telemetry.trace import (
    PHASE_ORDER,
    chrome_trace,
    job_traces,
    reconstruct,
    render_trace_summary,
    resolve_campaign_keys,
    write_chrome_trace,
)


def record(ts, event, **fields):
    return {"ts": ts, "event": event, "source": fields.pop("source", "t"), **fields}


def finished_job(key, worker, t0, *, setup=0.2, compile_s=0.3, simulate=0.4,
                 cache=0.01, tail=0.05, attempts=1, cached=False):
    """A full claim→phase→finish triple for one job."""
    total = cache + setup + compile_s + simulate + tail
    return [
        record(t0, "job_claimed", key=key, worker=worker, attempts=attempts),
        record(t0 + total - 0.001, "job_phase", key=key, worker=worker,
               cache_s=cache, setup_s=setup, compile_s=compile_s,
               simulate_s=simulate),
        record(t0 + total, "job_finished", key=key, worker=worker, ok=True,
               cached=cached, duration_s=total, attempts=attempts),
    ]


class TestReconstruction:
    def test_phase_spans_partition_the_root(self):
        traces = reconstruct(finished_job("k1", "w1", 100.0))
        (trace,) = traces.finished
        spans = trace.spans()
        assert [name for name, _, _ in spans] == list(PHASE_ORDER)
        # spans tile the root exactly: contiguous, inside, exhaustive
        cursor = trace.claimed_at
        for _name, start, dur in spans:
            assert start == pytest.approx(cursor)
            cursor = start + dur
        assert cursor == pytest.approx(trace.finished_at)

    def test_publish_is_the_unattributed_tail(self):
        traces = reconstruct(finished_job("k1", "w1", 100.0, tail=0.5))
        (trace,) = traces.finished
        publish = dict((n, d) for n, _s, d in trace.spans())["publish"]
        assert publish == pytest.approx(0.5)

    def test_overlong_phases_clamp_inside_root(self):
        # durations that sum past finish (clock skew) must not escape
        records = [
            record(10.0, "job_claimed", key="k", worker="w", attempts=1),
            record(10.4, "job_phase", key="k", worker="w", cache_s=0.0,
                   setup_s=1.0, compile_s=1.0, simulate_s=1.0),
            record(10.5, "job_finished", key="k", worker="w", ok=True,
                   cached=False, duration_s=0.5, attempts=1),
        ]
        (trace,) = reconstruct(records).finished
        for _name, start, dur in trace.spans():
            assert start >= trace.claimed_at
            assert start + dur <= trace.finished_at + 1e-9
        assert all(dur >= 0 for _n, _s, dur in trace.spans())

    def test_cached_hit_is_all_claim(self):
        traces = reconstruct(
            finished_job("k1", "w1", 5.0, setup=0.0, compile_s=0.0,
                         simulate=0.0, cache=0.2, tail=0.0, cached=True)
        )
        (trace,) = traces.finished
        spans = dict((n, d) for n, _s, d in trace.spans())
        assert trace.cached
        assert spans["claim"] == pytest.approx(0.2)
        assert spans["setup"] == spans["compile"] == spans["simulate"] == 0.0

    def test_requeued_attempt_stays_open_and_second_finishes(self):
        records = [
            record(1.0, "job_claimed", key="k", worker="w1", attempts=1),
            record(2.0, "requeue", key="k", attempts=2, terminal=False),
            *finished_job("k", "w2", 3.0, attempts=2),
        ]
        traces = reconstruct(records)
        assert len(traces.traces) == 2
        open_attempt = [t for t in traces.traces if not t.finished]
        assert len(open_attempt) == 1
        assert open_attempt[0].worker == "w1"
        assert open_attempt[0].requeued_at == 2.0
        (done,) = traces.finished
        assert done.worker == "w2" and done.attempt == 2
        assert [name for _ts, name, _w, _d in traces.instants] == ["requeue"]

    def test_finish_without_claim_synthesises_root(self):
        records = [
            record(50.0, "job_finished", key="v1", worker="w", ok=True,
                   cached=False, duration_s=2.0, attempts=1),
        ]
        (trace,) = reconstruct(records).finished
        assert trace.claimed_at == pytest.approx(48.0)
        assert trace.duration_s == pytest.approx(2.0)

    def test_key_filter_scopes_jobs_but_keeps_fleet_instants(self):
        records = [
            *finished_job("mine", "w1", 1.0),
            *finished_job("theirs", "w2", 1.0),
            record(2.0, "lease_renewed", worker="w1", batch="b", jobs=2, done=1),
            record(2.5, "lease_renewed", worker="w2", batch="b2", jobs=1, done=0),
        ]
        traces = reconstruct(records, keys={"mine"})
        assert [t.key for t in traces.traces] == ["mine"]
        # lease instants only for workers that touched the kept keys
        assert [(name, worker) for _ts, name, worker, _d in traces.instants] == [
            ("lease_renewed", "w1")
        ]

    def test_critical_path_is_slowest_chain(self):
        records = [
            *finished_job("fast", "w1", 1.0, simulate=0.1),
            *finished_job("slow", "w1", 5.0, simulate=3.0),
        ]
        traces = reconstruct(records)
        assert traces.critical_path().key == "slow"


class TestChromeExport:
    def test_structure_and_monotonicity(self):
        records = [
            *finished_job("k1", "w1", 100.0),
            *finished_job("k2", "w2", 100.5),
            record(101.0, "lease_renewed", worker="w1", batch="b", jobs=1, done=0),
        ]
        doc = chrome_trace(reconstruct(records))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        kinds = {event["ph"] for event in events}
        assert kinds == {"M", "X", "i"}
        for event in events:
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0
        roots = [e for e in events if e["ph"] == "X" and e["cat"] == "job"]
        phases = [e for e in events if e["ph"] == "X" and e["cat"] == "phase"]
        assert len(roots) == 2 and len(phases) == 10
        # children nest inside their root, per key
        for root in roots:
            key = root["args"]["key"]
            for child in phases:
                if child["args"]["key"] != key:
                    continue
                assert child["ts"] >= root["ts"]
                assert child["ts"] + child["dur"] <= root["ts"] + root["dur"]
        # worker thread lanes are named
        names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"w1", "w2", "spool"} <= names

    def test_epoch_start_recorded(self):
        doc = chrome_trace(reconstruct(finished_job("k", "w", 1234.5)))
        assert doc["otherData"]["trace_start_epoch_s"] == pytest.approx(1234.5)
        assert doc["otherData"]["jobs_finished"] == 1

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        path = write_chrome_trace(
            reconstruct(finished_job("k", "w", 1.0)), tmp_path / "t.json"
        )
        assert json.loads(path.read_text())["traceEvents"]


class TestSummary:
    def test_summary_lists_phases_and_critical_path(self):
        records = [
            *finished_job("abcdef123456", "w1", 1.0),
            record(1.2, "requeue", key="other", attempts=2, terminal=False),
        ]
        text = render_trace_summary(reconstruct(records))
        for name in PHASE_ORDER:
            assert name in text
        assert "critical path: job abcdef123456" in text
        assert "requeues: 1" in text

    def test_empty_stream_renders_gracefully(self):
        text = render_trace_summary(reconstruct([]))
        assert "nothing to summarise" in text


class TestRealSpool:
    @pytest.fixture()
    def drained_spool(self, tmp_path):
        jobs = montecarlo_jobs(
            SystemRef.baseline4(), "rc", 2, 3, seed=0, metric="reachability"
        )
        spool = Spool(tmp_path / "spool", lease_s=5.0).ensure()
        spool.attach_events("test-enqueuer")
        campaign = Campaign(name="real", jobs=tuple(jobs))
        write_campaign_manifest(spool.root, campaign, source="test-enqueuer")
        spool.enqueue(jobs, batch_size=2)
        cache = ResultCache(tmp_path / "cache")
        run_worker(spool.root, cache, worker_id="trace-w",
                   idle_timeout_s=1.0, lease_s=5.0)
        return spool, {job.key() for job in jobs}

    def test_every_job_has_all_five_spans(self, drained_spool):
        spool, keys = drained_spool
        traces = job_traces(spool.root, campaign="real")
        assert {t.key for t in traces.finished} == keys
        for trace in traces.finished:
            assert [n for n, _s, _d in trace.spans()] == list(PHASE_ORDER)
            assert trace.ok
        doc = chrome_trace(traces)
        roots = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "job"
        ]
        assert {root["args"]["key"] for root in roots} == keys

    def test_campaign_resolution(self, drained_spool):
        spool, keys = drained_spool
        assert resolve_campaign_keys(spool.root, "real") == keys
        with pytest.raises(ValueError, match="unknown campaign"):
            resolve_campaign_keys(spool.root, "ghost")

    def test_cli_trace(self, drained_spool, tmp_path, capsys):
        from repro.cli import main

        spool, keys = drained_spool
        out = tmp_path / "trace.json"
        assert main(["trace", str(spool.root), "--campaign", "real",
                     "-o", str(out)]) == 0
        captured = capsys.readouterr()
        assert "critical path" in captured.out
        doc = json.loads(out.read_text())
        assert doc["otherData"]["campaign"] == "real"
        with pytest.raises(SystemExit):
            main(["trace", str(spool.root), "--campaign", "ghost"])
