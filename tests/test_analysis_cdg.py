"""Channel-dependency-graph deadlock analysis."""

import pytest

from repro.analysis.cdg import build_cdg, find_dependency_cycle
from repro.fault.model import chiplet_fault_pattern
from repro.routing.deft import DeftRouting, VlSelectionStrategy
from repro.routing.mtr import MtrRouting
from repro.routing.naive import NaiveRouting
from repro.routing.rc import RcRouting


class TestProtectedAlgorithmsAreAcyclic:
    @pytest.mark.parametrize("factory", [DeftRouting, MtrRouting, RcRouting])
    def test_acyclic_on_baseline(self, system4, factory):
        report = build_cdg(system4, factory(system4))
        assert report.is_acyclic
        assert report.cycle() is None
        assert report.pairs_walked > 4000
        assert report.unroutable_pairs == 0

    def test_deft_distance_strategy_acyclic(self, system4):
        algo = DeftRouting(system4, VlSelectionStrategy.DISTANCE)
        assert find_dependency_cycle(system4, algo) is None

    def test_deft_acyclic_under_faults(self, system4):
        algo = DeftRouting(system4)
        state = chiplet_fault_pattern(system4, 0, down_faulty=[0, 1]).with_faults(
            chiplet_fault_pattern(system4, 2, up_faulty=[1, 3]).faults
        )
        algo.set_fault_state(state)
        report = build_cdg(system4, algo)
        assert report.is_acyclic
        assert report.unroutable_pairs == 0

    def test_mtr_acyclic_under_faults_with_drops(self, system4):
        algo = MtrRouting(system4)
        algo.set_fault_state(
            chiplet_fault_pattern(system4, 0, down_faulty=[0, 2])
        )
        report = build_cdg(system4, algo)
        assert report.is_acyclic
        assert report.unroutable_pairs > 0  # west half of chiplet 0 cut off

    def test_two_chiplet_system(self, system2):
        for factory in (DeftRouting, MtrRouting, RcRouting):
            assert find_dependency_cycle(system2, factory(system2)) is None


class TestNaiveIsCyclic:
    def test_figure1_motivation(self, system4):
        """The unprotected network has the cyclic dependency of Fig. 1."""
        cycle = find_dependency_cycle(system4, NaiveRouting(system4))
        assert cycle is not None
        assert len(cycle) >= 4

    def test_cycle_crosses_layers(self, system4):
        """The cycle necessarily spans chiplet and interposer channels."""
        report = build_cdg(system4, NaiveRouting(system4))
        cycle = report.cycle()
        layers = set()
        for (link, _vn) in cycle:
            if isinstance(link, tuple) and isinstance(link[0], int):
                layers.add(system4.routers[link[0]].layer)
        assert len(layers) >= 2

    def test_naive_on_two_chiplets_also_cyclic(self, system2):
        assert find_dependency_cycle(system2, NaiveRouting(system2)) is not None


class TestCdgStructure:
    def test_vn_partition_edges_never_downgrade(self, system4):
        """No CDG edge goes from a VN.1 channel to a VN.0 channel (Rule 1)."""
        report = build_cdg(system4, DeftRouting(system4))
        for (src, dst) in report.graph.edges():
            _, vn_src = src
            _, vn_dst = dst
            assert vn_dst >= vn_src

    def test_rc_buffer_nodes_have_no_inbound_edges(self, system4):
        report = build_cdg(system4, RcRouting(system4))
        rc_nodes = [n for n in report.graph.nodes if n[0][0] == "rcbuf"]
        assert rc_nodes
        for node in rc_nodes:
            assert report.graph.in_degree(node) == 0

    def test_subset_of_sources(self, system4):
        sources = system4.cores[:4]
        report = build_cdg(system4, DeftRouting(system4), sources=sources)
        expected = len(sources) * (len(system4.pes) - 1)
        assert report.pairs_walked <= expected
