"""Spool protocol v2: batched leases, remainder requeue, v1 compat.

The equality bar is unchanged from protocol v1 — *bit-identical to
SerialBackend* no matter how jobs are grouped under leases, crashed
mid-batch, or requeued — plus the new invariants batching introduces:
a settled job's result is always durable before the lease says so, a
crash requeues exactly the unsettled remainder (once, with carried
attempt counts), and v1 spool directories stay drainable.
"""

import json
import os
import signal
import subprocess
import time

import pytest

from repro.config import SimulationConfig
from repro.distributed import Spool, SpoolBackend, auto_batch_size, run_worker
from repro.distributed.backend import _worker_command
from repro.distributed.spool import MAX_BATCH, PROTOCOL_VERSION
from repro.montecarlo import montecarlo_jobs
from repro.runner import (
    Job,
    ResultCache,
    SerialBackend,
    SystemRef,
    TrafficSpec,
)
from repro.runner.result import JobResult
from repro.telemetry.metrics import get_registry
from repro.telemetry.status import fleet_status

TINY = SimulationConfig(
    warmup_cycles=30, measure_cycles=100, drain_cycles=1_200, watchdog_cycles=2_000
)


def reachability_jobs(samples: int = 6, algorithm: str = "rc") -> list[Job]:
    """Fast analytic Monte Carlo jobs (no simulator) on one topology."""
    return montecarlo_jobs(
        SystemRef.baseline4(), algorithm, 2, samples, seed=0, metric="reachability"
    )


def serial_results(jobs):
    return SerialBackend().run(jobs)


def batch_files(spool: Spool) -> list[str]:
    return sorted(
        path.name
        for path in spool.jobs_dir.glob("batch-*.json")
    )


class TestBatchedEnqueue:
    def test_batched_enqueue_groups_and_counts_jobs(self, tmp_path):
        jobs = reachability_jobs(10)
        spool = Spool(tmp_path)
        assert spool.enqueue(jobs, batch_size=4) == 10
        # 4 + 4 + 2: counts stay job-accurate from file names alone.
        assert spool.pending_count() == 10
        assert len(batch_files(spool)) == 3
        # Idempotent by content address, batch files included.
        assert spool.enqueue(jobs, batch_size=4) == 0
        assert spool.enqueue(jobs) == 0
        assert spool.pending_count() == 10

    def test_partial_overlap_enqueues_only_fresh_jobs(self, tmp_path):
        jobs = reachability_jobs(8)
        spool = Spool(tmp_path)
        spool.enqueue(jobs[:5], batch_size=4)
        # 3 of the 8 are new; they form one batch of 3.
        assert spool.enqueue(jobs, batch_size=4) == 3
        assert spool.pending_count() == 8

    def test_remainder_of_one_uses_v1_single_file(self, tmp_path):
        jobs = reachability_jobs(5)
        spool = Spool(tmp_path)
        spool.enqueue(jobs, batch_size=4)
        singles = [
            path.name
            for path in spool.jobs_dir.glob("*.json")
            if not path.name.startswith("batch-")
        ]
        assert len(singles) == 1  # the 5th job, claimable by v1 workers
        assert spool.pending_count() == 5

    def test_batch_size_clamped(self, tmp_path):
        jobs = reachability_jobs(40)
        spool = Spool(tmp_path)
        spool.enqueue(jobs, batch_size=1_000)
        for name in batch_files(spool):
            payload = json.loads((spool.jobs_dir / name).read_text())
            assert len(payload["jobs"]) <= MAX_BATCH

    def test_spool_manifest_records_protocol_version(self, tmp_path):
        spool = Spool(tmp_path).ensure()
        assert spool.protocol_version() == PROTOCOL_VERSION
        manifest = json.loads((tmp_path / "spool.json").read_text())
        assert manifest["protocol"] == PROTOCOL_VERSION

    def test_future_protocol_version_refused(self, tmp_path):
        Spool(tmp_path).ensure()
        (tmp_path / "spool.json").write_text(
            json.dumps({"protocol": PROTOCOL_VERSION + 1})
        )
        with pytest.raises(ValueError, match="upgrade the worker"):
            Spool(tmp_path).ensure()


class TestBatchClaim:
    def test_claim_batch_takes_all_jobs_under_one_lease(self, tmp_path):
        jobs = reachability_jobs(4)
        spool = Spool(tmp_path)
        spool.enqueue(jobs, batch_size=4)
        claim = spool.claim_batch("w1")
        assert claim is not None and len(claim) == 4
        assert {entry.attempts for entry in claim.entries} == {1}
        assert {entry.job.key() for entry in claim.entries} == {
            job.key() for job in jobs
        }
        # One lease file; job-accurate claimed depth; nothing pending.
        assert len(list(spool.claims_dir.glob("*.json"))) == 1
        assert spool.claimed_count() == 4
        assert spool.pending_count() == 0

    def test_batch_claim_is_single_winner(self, tmp_path):
        jobs = reachability_jobs(4)
        spool = Spool(tmp_path)
        spool.enqueue(jobs, batch_size=4)
        first = spool.claim_batch("w1")
        second = spool.claim_batch("w2")
        assert first is not None and len(first) == 4
        assert second is None

    def test_claimed_batch_keys_not_reenqueued(self, tmp_path):
        jobs = reachability_jobs(4)
        spool = Spool(tmp_path)
        spool.enqueue(jobs, batch_size=4)
        assert spool.claim_batch("w1") is not None
        assert spool.enqueue(jobs, batch_size=4) == 0
        assert spool.enqueue(jobs) == 0
        assert spool.pending_count() == 0

    def test_heartbeat_covers_whole_batch(self, tmp_path):
        jobs = reachability_jobs(4)
        spool = Spool(tmp_path, lease_s=5.0)
        spool.enqueue(jobs, batch_size=4)
        claim = spool.claim_batch("w1")
        original = claim.deadline
        assert spool.heartbeat_batch(claim, now=original - 1.0)
        assert claim.deadline > original
        # The single renewal kept all four jobs alive.
        assert spool.requeue_expired(now=original + 1.0) == 0
        assert spool.claimed_count() == 4

    def test_settling_every_job_completes_the_batch(self, tmp_path):
        jobs = reachability_jobs(3)
        spool = Spool(tmp_path)
        spool.enqueue(jobs, batch_size=3)
        claim = spool.claim_batch("w1")
        keys = [entry.key for entry in claim.entries]
        spool.flush_done(claim, keys[:2])
        assert spool.claimed_count() == 3  # lease file still present
        assert len(claim.remaining) == 1
        spool.flush_done(claim, keys[2:])
        assert spool.claimed_count() == 0
        assert spool.pending_count() == 0

    def test_claim_records_batch_size_histogram(self, tmp_path):
        registry = get_registry()
        if not registry.enabled:
            pytest.skip("telemetry disabled in this environment")
        hist = registry.histogram("deft_spool_batch_size")
        before = hist.count
        spool = Spool(tmp_path)
        spool.enqueue(reachability_jobs(4), batch_size=4)
        spool.claim_batch("w1")
        assert hist.count == before + 1

    def test_spool_counts_its_fs_ops(self, tmp_path):
        registry = get_registry()
        if not registry.enabled:
            pytest.skip("telemetry disabled in this environment")
        counter = registry.counter("deft_spool_fs_ops")
        before = counter.value
        spool = Spool(tmp_path)
        spool.enqueue(reachability_jobs(4), batch_size=4)
        spool.claim_batch("w1")
        assert counter.value > before


class TestBatchCrashSemantics:
    """Satellite: crash mid-batch — done results survive, the remainder
    requeues exactly once with carried attempts, merge stays serial-
    identical."""

    def test_expired_batch_requeues_only_unsettled_remainder(self, tmp_path):
        jobs = reachability_jobs(4)
        spool = Spool(tmp_path, lease_s=5.0)
        spool.enqueue(jobs, batch_size=4)
        claim = spool.claim_batch("doomed")
        keys = [entry.key for entry in claim.entries]
        spool.flush_done(claim, keys[:2])  # two jobs settled pre-crash

        # The worker dies here; lease expiry requeues the remainder as
        # exactly one pending file holding exactly the two open jobs.
        assert spool.requeue_expired(now=claim.deadline + 1.0) == 1
        assert spool.claimed_count() == 0
        assert spool.pending_count() == 2

        rescue = spool.claim_batch("rescuer")
        assert {entry.key for entry in rescue.entries} == set(keys[2:])
        # Attempt counts carried: these are second executions.
        assert {entry.attempts for entry in rescue.entries} == {2}
        # ...and the settled jobs were requeued zero times.
        assert spool.pending_count() == 0

    def test_expiry_past_max_attempts_fails_remainder_per_job(self, tmp_path):
        jobs = reachability_jobs(2)
        spool = Spool(tmp_path, lease_s=5.0, max_attempts=1)
        spool.enqueue(jobs, batch_size=2)
        claim = spool.claim_batch("flaky")
        assert spool.requeue_expired(now=claim.deadline + 1.0) == 1
        assert spool.pending_count() == 0
        for job in jobs:
            failed = spool.failed_result(job.key())
            assert failed is not None and not failed.ok

    def test_sigkill_mid_batch_merge_stays_serial_identical(self, tmp_path):
        """The acceptance scenario end to end: a worker holding a batch
        of four ~1s jobs is SIGKILLed after some (not all) results have
        been flushed; settled results survive in the cache, the
        remainder requeues once with carried attempts, and a rescuer
        completes a bit-identical campaign."""
        jobs = montecarlo_jobs(
            SystemRef.baseline4(), "rc", 2, 4, seed=0, metric="latency",
            traffic=TrafficSpec.make("uniform", rate=0.003),
            config=SimulationConfig(warmup_cycles=300, measure_cycles=2_000,
                                    drain_cycles=20_000),
        )
        reference = serial_results(jobs)
        spool = Spool(tmp_path / "spool", lease_s=2.0).ensure()
        spool.enqueue(jobs, batch_size=4)
        assert len(batch_files(spool)) == 1
        cache = ResultCache(tmp_path / "cache")

        command = _worker_command(
            spool.root, cache, worker_id="victim",
            lease_s=spool.lease_s, max_attempts=spool.max_attempts,
            poll_s=0.05, use_session=True,
        )
        env = dict(os.environ)
        package_root = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(package_root) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        victim = subprocess.Popen(
            command, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Kill once at least one result of the batch has been
            # flushed to the cache but the batch is still leased.
            deadline = time.monotonic() + 120.0
            while True:
                assert time.monotonic() < deadline, "no result ever flushed"
                assert victim.poll() is None, "worker exited prematurely"
                landed = sum(1 for job in jobs if cache.get(job) is not None)
                if landed >= 1 and spool.claimed_count() > 0:
                    break
                time.sleep(0.02)
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30.0)
        finally:
            if victim.poll() is None:
                victim.kill()

        # Settled results survived the crash...
        landed = {
            job.key() for job in jobs if cache.get(job) is not None
        }
        assert landed
        open_keys = {job.key() for job in jobs} - landed
        # ...the orphaned lease still covers at least the open jobs...
        assert spool.claimed_count() >= len(open_keys)
        # ...and expiry requeues the remainder in exactly one sweep.
        assert spool.requeue_expired(now=time.time() + spool.lease_s + 1) == 1
        assert spool.claimed_count() == 0
        assert spool.requeue_expired(now=time.time() + spool.lease_s + 1) == 0

        # Any unsettled job goes back with its attempt count carried.
        snapshot_attempts = {}
        rescue = spool.claim_batch("inspector")
        if rescue is not None:
            snapshot_attempts = {
                entry.key: entry.attempts for entry in rescue.entries
            }
            for key, attempts in snapshot_attempts.items():
                assert attempts == 2, (key, attempts)
            spool.release_entries(rescue, rescue.entries)

        # A healthy worker finishes the campaign; merged == serial.
        run_worker(spool.root, cache, worker_id="rescuer", idle_timeout_s=0.3)
        merged = [cache.get(job) for job in jobs]
        assert None not in merged
        assert merged == reference


class TestBatchWorker:
    def test_worker_drains_batches_bit_identical(self, tmp_path):
        jobs = reachability_jobs(9)
        reference = serial_results(jobs)
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue(jobs, batch_size=4)
        cache = ResultCache(tmp_path / "cache")
        stats = run_worker(
            spool.root, cache, worker_id="w0", idle_timeout_s=0.2
        )
        assert stats["jobs_done"] == len(jobs)
        assert stats["batches_claimed"] == 3  # 4 + 4 + 1
        assert [cache.get(job) for job in jobs] == reference
        assert spool.pending_count() == 0 and spool.claimed_count() == 0

    def test_max_jobs_mid_batch_releases_remainder(self, tmp_path):
        jobs = reachability_jobs(4)
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue(jobs, batch_size=4)
        cache = ResultCache(tmp_path / "cache")
        stats = run_worker(spool.root, cache, max_jobs=2, idle_timeout_s=0.2)
        assert stats["jobs_done"] == 2
        assert stats["jobs_released"] == 2
        # Released jobs are pending again, unexecuted: attempts reset to
        # their pre-claim value, so the next claim is attempt 1 again.
        assert spool.pending_count() == 2
        assert spool.claimed_count() == 0
        rest = spool.claim_batch("w2")
        assert {entry.attempts for entry in rest.entries} == {1}

    def test_stop_mid_batch_releases_remainder(self, tmp_path):
        jobs = reachability_jobs(4)
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue(jobs, batch_size=4)
        claim = spool.claim_batch("w1")
        spool.request_stop()
        released = spool.release_entries(claim, claim.entries)
        assert released == 4
        assert spool.claimed_count() == 0
        assert spool.pending_count() == 4

    def test_failed_job_inside_batch_retries_then_lands_terminally(
        self, tmp_path
    ):
        bad = Job.make(
            SystemRef.baseline4(), "bogus",
            TrafficSpec.make("uniform", rate=0.004), TINY,
        )
        good = reachability_jobs(3)
        spool = Spool(tmp_path / "spool", max_attempts=2).ensure()
        spool.enqueue([bad] + good, batch_size=4)
        cache = ResultCache(tmp_path / "cache")
        stats = run_worker(
            spool.root, cache, max_attempts=2, idle_timeout_s=0.3
        )
        # 3 good + 2 attempts of the bad one.
        assert stats["jobs_done"] == 5 and stats["jobs_failed"] == 2
        failed = spool.failed_result(bad.key())
        assert failed is not None and "ConfigurationError" in failed.error
        assert cache.get(bad) is None
        assert [cache.get(job) for job in good] == serial_results(good)

    def test_v1_spool_drainable_by_v2_worker(self, tmp_path):
        """A spool written before the version manifest existed (per-key
        pending files, no spool.json) drains as batches of one."""
        jobs = reachability_jobs(3)
        reference = serial_results(jobs)
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue(jobs)  # v1 wire format
        (spool.root / "spool.json").unlink()  # pre-v2 directory
        assert Spool(tmp_path / "spool").protocol_version() == 1

        cache = ResultCache(tmp_path / "cache")
        stats = run_worker(
            spool.root, cache, worker_id="modern", idle_timeout_s=0.2
        )
        assert stats["jobs_done"] == 3
        assert stats["batches_claimed"] == 3  # one lease per v1 file
        assert [cache.get(job) for job in jobs] == reference


class TestPutMany:
    def job_results(self, count: int):
        jobs = reachability_jobs(count)
        return list(zip(jobs, serial_results(jobs)))

    def test_put_many_round_trips(self, tmp_path):
        pairs = self.job_results(4)
        cache = ResultCache(tmp_path)
        assert cache.put_many(pairs) == 4
        for job, result in pairs:
            served = cache.get(job)
            assert served is not None
            served.cached = result.cached  # get() marks entries cached
            assert served == result

    def test_put_many_skips_failed_results(self, tmp_path):
        pairs = self.job_results(2)
        failed = JobResult(job_key=pairs[0][0].key(), ok=False, error="boom")
        cache = ResultCache(tmp_path)
        assert cache.put_many([(pairs[0][0], failed), pairs[1]]) == 1
        assert cache.get(pairs[0][0]) is None
        assert cache.get(pairs[1][0]) is not None

    def test_put_many_matches_put_byte_for_byte(self, tmp_path):
        pairs = self.job_results(3)
        one = ResultCache(tmp_path / "one")
        many = ResultCache(tmp_path / "many")
        for job, result in pairs:
            one.put(job, result)
        many.put_many(pairs)
        for job, _ in pairs:
            assert (
                many.path_for(job).read_bytes() == one.path_for(job).read_bytes()
            )

    def test_put_many_compressed(self, tmp_path):
        pairs = self.job_results(2)
        cache = ResultCache(tmp_path, compress=True)
        assert cache.put_many(pairs) == 2
        for job, _ in pairs:
            assert cache.path_for(job).name.endswith(".json.gz")
            assert cache.get(job) is not None


class TestAutoBatchSizing:
    def seed_history(self, spool_root, durations):
        events = spool_root / "manifest" / "events"
        events.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(
                {
                    "ts": 1_000.0 + i,
                    "event": "job_finished",
                    "source": "w0",
                    "ok": True,
                    "cached": False,
                    "duration_s": duration,
                }
            )
            for i, duration in enumerate(durations)
        ]
        (events / "w0.jsonl").write_text("\n".join(lines) + "\n")

    def test_no_history_sizes_to_one(self, tmp_path):
        assert auto_batch_size(tmp_path) == 1

    def test_short_jobs_batch_aggressively(self, tmp_path):
        self.seed_history(tmp_path, [0.1] * 20)  # 2s target / 0.1s = 20
        assert auto_batch_size(tmp_path) == 20

    def test_long_jobs_stay_at_one(self, tmp_path):
        self.seed_history(tmp_path, [3.0] * 5)
        assert auto_batch_size(tmp_path) == 1

    def test_clamped_to_max_batch(self, tmp_path):
        self.seed_history(tmp_path, [0.001] * 10)
        assert auto_batch_size(tmp_path) == MAX_BATCH

    def test_cached_results_do_not_skew_sizing(self, tmp_path):
        events = tmp_path / "manifest" / "events"
        events.mkdir(parents=True, exist_ok=True)
        # Near-instant cache hits must not convince the sizing that
        # execution is near-instant.
        lines = [
            json.dumps(
                {
                    "ts": 1_000.0 + i,
                    "event": "job_finished",
                    "source": "w0",
                    "cached": True,
                    "duration_s": 0.0001,
                }
            )
            for i in range(50)
        ] + [
            json.dumps(
                {
                    "ts": 2_000.0,
                    "event": "job_finished",
                    "source": "w0",
                    "cached": False,
                    "duration_s": 4.0,
                }
            )
        ]
        (events / "w0.jsonl").write_text("\n".join(lines) + "\n")
        assert auto_batch_size(tmp_path) == 1

    def test_backend_batches_from_history(self, tmp_path):
        """End to end: a spool whose history says ~instant jobs makes the
        auto backend enqueue multi-job batches on the next campaign."""
        self.seed_history(tmp_path / "spool", [0.01] * 10)
        jobs = reachability_jobs(8)
        cache = ResultCache(tmp_path / "cache")
        with SpoolBackend(
            cache=cache, spool_dir=tmp_path / "spool", workers=0,
            lease_s=10.0, stall_timeout_s=60.0, batch="auto",
        ) as backend:
            backend.spool.ensure()
            backend.spool.enqueue(jobs, batch_size=auto_batch_size(tmp_path / "spool"))
            spool = Spool(tmp_path / "spool")
            assert spool.pending_count() == 8
            assert len(batch_files(spool)) >= 1  # history said: batch


class TestStatusUnderBatching:
    """Satellite: ``deft status`` depths count jobs, not lease files, and
    the jobs/s trailing-window math is unchanged by batching."""

    def test_claimed_depth_counts_jobs_not_leases(self, tmp_path):
        jobs = reachability_jobs(6)
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue(jobs, batch_size=3)
        claim = spool.claim_batch("w1")
        status = fleet_status(tmp_path / "spool", now=time.time())
        assert status["spool"]["claimed"] == 3  # one lease, three jobs
        assert status["spool"]["pending"] == 3
        assert status["leases"]["active"] == 3
        assert status["leases"]["stale"] == 0

        # Settling a job inside the batch drops it from the depth.
        spool.flush_done(claim, [claim.entries[0].key])
        status = fleet_status(tmp_path / "spool", now=time.time())
        assert status["spool"]["claimed"] == 2

    def test_stale_batch_lease_reports_per_job(self, tmp_path):
        jobs = reachability_jobs(4)
        spool = Spool(tmp_path / "spool", lease_s=5.0).ensure()
        spool.enqueue(jobs, batch_size=4)
        claim = spool.claim_batch("w1")
        status = fleet_status(
            tmp_path / "spool", now=claim.deadline + 1.0
        )
        assert status["leases"]["stale"] == 4
        assert len(status["leases"]["stale_keys"]) == 4

    def test_jobs_per_s_window_math_unchanged(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        events = spool.root / "manifest" / "events"
        events.mkdir(parents=True, exist_ok=True)
        now = 10_000.0
        # 5 finishes inside the 60s window, 2 before it.
        stamps = [now - 200.0, now - 90.0] + [now - 50.0 + i for i in range(5)]
        lines = [
            json.dumps(
                {
                    "ts": ts,
                    "event": "job_finished",
                    "source": "w0",
                    "ok": True,
                    "cached": False,
                    "duration_s": 0.5,
                }
            )
            for ts in stamps
        ]
        (events / "w0.jsonl").write_text("\n".join(lines) + "\n")
        status = fleet_status(tmp_path / "spool", now=now, window_s=60.0)
        assert status["throughput"]["finished_total"] == 7
        assert status["throughput"]["finished_in_window"] == 5
        assert status["throughput"]["jobs_per_s"] == pytest.approx(5 / 60.0)
