"""Optional gzip compression for result-cache entries.

Contract: ``compress=True`` changes bytes on disk, never results — a
compressed cache round-trips bit-identical results, mixed caches stay
fully servable in both directions, and stats/prune account for both
forms.
"""

import gzip
import json

from repro.config import SimulationConfig
from repro.montecarlo import montecarlo_jobs
from repro.runner import (
    CampaignRunner,
    Job,
    ResultCache,
    SerialBackend,
    SystemRef,
    TrafficSpec,
    execute_job,
)

TINY = SimulationConfig(
    warmup_cycles=30, measure_cycles=100, drain_cycles=1_200, watchdog_cycles=2_000
)


def one_job(seed: int = 1) -> Job:
    return Job.make(
        SystemRef.baseline4(), "rc",
        TrafficSpec.make("uniform", rate=0.003), TINY, seed=seed,
    )


def analytic_jobs(samples: int = 4) -> list[Job]:
    return montecarlo_jobs(
        SystemRef.baseline4(), "rc", 2, samples, seed=0, metric="reachability"
    )


class TestCompressedRoundTrip:
    def test_put_writes_gzip_and_get_round_trips(self, tmp_path):
        job = one_job()
        result = execute_job(job)
        cache = ResultCache(tmp_path, compress=True)
        cache.put(job, result)
        path = cache.path_for(job)
        assert path.name.endswith(".json.gz")
        assert path.exists()
        # Genuinely gzip on disk, and smaller than the JSON it holds.
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["result"]["job_key"] == job.key()
        assert path.stat().st_size < len(json.dumps(payload))
        assert cache.get(job) == result

    def test_compressed_cache_through_runner_is_identical(self, tmp_path):
        jobs = analytic_jobs()
        plain = CampaignRunner(backend=SerialBackend()).run(jobs)
        cold = CampaignRunner(
            backend=SerialBackend(), cache=ResultCache(tmp_path, compress=True)
        ).run(jobs)
        warm = CampaignRunner(
            backend=SerialBackend(), cache=ResultCache(tmp_path, compress=True)
        ).run(jobs)
        assert cold.results == plain.results
        assert warm.results == plain.results
        assert warm.executed == 0 and warm.cache_hits == len(jobs)


class TestMixedForms:
    def test_uncompressed_reader_serves_compressed_entry(self, tmp_path):
        job = one_job()
        result = execute_job(job)
        ResultCache(tmp_path, compress=True).put(job, result)
        assert ResultCache(tmp_path).get(job) == result

    def test_compressed_reader_serves_uncompressed_entry(self, tmp_path):
        job = one_job()
        result = execute_job(job)
        ResultCache(tmp_path).put(job, result)
        assert ResultCache(tmp_path, compress=True).get(job) == result

    def test_corrupt_gzip_entry_is_a_miss(self, tmp_path):
        job = one_job()
        cache = ResultCache(tmp_path, compress=True)
        path = cache.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"definitely not gzip")
        assert cache.get(job) is None
        assert cache.misses == 1


class TestStatsAndPrune:
    def test_stats_report_compressed_and_uncompressed_counts(self, tmp_path):
        packed_job, plain_job = analytic_jobs(2)
        ResultCache(tmp_path, compress=True).put(packed_job, execute_job(packed_job))
        ResultCache(tmp_path).put(plain_job, execute_job(plain_job))
        stats = ResultCache(tmp_path).stats()
        assert stats.entries == 2
        assert stats.compressed == 1
        assert "1 compressed, 1 uncompressed" in stats.summary()

    def test_prune_all_sweeps_both_forms(self, tmp_path):
        packed_job, plain_job = analytic_jobs(2)
        ResultCache(tmp_path, compress=True).put(packed_job, execute_job(packed_job))
        ResultCache(tmp_path).put(plain_job, execute_job(plain_job))
        removed = ResultCache(tmp_path).prune(remove_all=True)
        assert removed.entries == 2 and removed.compressed == 1
        assert ResultCache(tmp_path).stats().entries == 0

    def test_len_counts_both_forms(self, tmp_path):
        packed_job, plain_job = analytic_jobs(2)
        ResultCache(tmp_path, compress=True).put(packed_job, execute_job(packed_job))
        ResultCache(tmp_path).put(plain_job, execute_job(plain_job))
        assert len(ResultCache(tmp_path)) == 2


class TestCLI:
    def test_cache_stats_reports_compression(self, tmp_path, capsys):
        from repro.cli import main

        job = analytic_jobs(1)[0]
        ResultCache(tmp_path, compress=True).put(job, execute_job(job))
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 cached result(s)" in out
        assert "1 compressed, 0 uncompressed" in out

    def test_campaign_compress_cache_flag(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cc"
        code = main([
            "campaign", "--system", "4", "--algo", "rc",
            "--rates", "0.003", "--seeds", "1",
            "--warmup", "30", "--cycles", "100", "--drain", "1200",
            "--cache-dir", str(cache_dir), "--compress-cache", "--quiet",
        ])
        assert code == 0
        stats = ResultCache(cache_dir).stats()
        assert stats.entries == 1 and stats.compressed == 1
