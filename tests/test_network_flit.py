"""Packet/flit serialization."""

from repro.network.flit import Flit, FlitKind, Packet


class TestPacket:
    def test_flit_sequence_structure(self):
        packet = Packet(1, 0, 5, size=8, created_cycle=10)
        flits = packet.flits()
        assert len(flits) == 8
        assert flits[0].kind is FlitKind.HEAD
        assert flits[-1].kind is FlitKind.TAIL
        assert all(f.kind is FlitKind.BODY for f in flits[1:-1])
        assert [f.seq for f in flits] == list(range(8))
        assert all(f.packet is packet for f in flits)

    def test_single_flit_packet(self):
        packet = Packet(1, 0, 5, size=1, created_cycle=0)
        flits = packet.flits()
        assert len(flits) == 1
        assert flits[0].kind is FlitKind.HEAD_TAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_two_flit_packet(self):
        flits = Packet(1, 0, 5, size=2, created_cycle=0).flits()
        assert [f.kind for f in flits] == [FlitKind.HEAD, FlitKind.TAIL]

    def test_latency_none_until_delivered(self):
        packet = Packet(1, 0, 5, size=8, created_cycle=10)
        assert packet.latency is None
        packet.delivered_cycle = 42
        assert packet.latency == 32

    def test_head_tail_predicates(self):
        assert FlitKind.HEAD.is_head and not FlitKind.HEAD.is_tail
        assert FlitKind.TAIL.is_tail and not FlitKind.TAIL.is_head
        assert not FlitKind.BODY.is_head and not FlitKind.BODY.is_tail
        assert FlitKind.HEAD_TAIL.is_head and FlitKind.HEAD_TAIL.is_tail
