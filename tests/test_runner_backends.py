"""Parallel backend: serial equivalence, timeout and crash capture.

These tests spawn real worker processes; job windows are kept tiny so
the whole module stays in CI budget even on one core.
"""

import pytest

from repro.config import SimulationConfig
from repro.experiments.common import sweep_jobs
from repro.runner import (
    CampaignRunner,
    Job,
    ProcessPoolBackend,
    SerialBackend,
    SystemRef,
    TrafficSpec,
)

TINY = SimulationConfig(
    warmup_cycles=30, measure_cycles=100, drain_cycles=1_200, watchdog_cycles=2_000
)


def _worker_session_counters() -> dict:
    """Module-level (picklable) probe: a pool worker's session stats."""
    from repro.runner.session import get_session

    return dict(get_session().stats)


def small_grid() -> list[Job]:
    """A miniature fig4-style grid: 2 algorithms x 2 rates x 2 seeds."""
    return sweep_jobs(
        SystemRef.baseline4(), ("deft", "rc"), "uniform",
        (0.003, 0.004), TINY, seeds=(1, 2),
    )


class TestProcessPoolBackend:
    def test_serial_parallel_equivalence(self):
        jobs = small_grid()
        serial = SerialBackend().run(jobs)
        parallel = ProcessPoolBackend(workers=2).run(jobs)
        assert [r.job_key for r in parallel] == [r.job_key for r in serial]
        for s, p in zip(serial, parallel):
            assert p == s  # identical metrics, field by field
            assert p.average_latency == s.average_latency

    def test_runner_equivalence_through_campaign(self):
        jobs = small_grid()[:2]
        serial = CampaignRunner(backend=SerialBackend()).run(jobs)
        parallel = CampaignRunner(backend=ProcessPoolBackend(workers=2)).run(jobs)
        assert parallel.results == serial.results

    def test_error_capture_in_worker(self):
        bad = Job.make(
            SystemRef.baseline4(), "bogus",
            TrafficSpec.make("uniform", rate=0.004), TINY,
        )
        good = small_grid()[0]
        results = ProcessPoolBackend(workers=2).run([bad, good])
        assert not results[0].ok and "ConfigurationError" in results[0].error
        assert results[1].ok

    def test_timeout_capture(self):
        # A full-scale window takes far longer than the 1 ms budget.
        slow = Job.make(
            SystemRef.baseline4(), "deft",
            TrafficSpec.make("uniform", rate=0.006),
            SimulationConfig(warmup_cycles=2_000, measure_cycles=8_000,
                             drain_cycles=20_000),
        )
        backend = ProcessPoolBackend(workers=1, timeout=0.001)
        results = backend.run([slow])
        assert not results[0].ok
        assert "timed out" in results[0].error

    def test_queued_job_behind_timeout_still_runs(self):
        """The in-worker alarm frees the worker: no timeout cascade."""
        slow = Job.make(
            SystemRef.baseline4(), "deft",
            TrafficSpec.make("uniform", rate=0.006),
            SimulationConfig(warmup_cycles=2_000, measure_cycles=8_000,
                             drain_cycles=20_000),
        )
        # Budget sits between the tiny job (~0.2s) and the full-scale one
        # (many seconds).
        quick = small_grid()[0]
        results = ProcessPoolBackend(workers=1, timeout=1.0).run([slow, quick])
        assert not results[0].ok and "timed out" in results[0].error
        assert results[1].ok and results[1].average_latency > 0

    def test_timed_out_job_is_not_cached(self, tmp_path):
        from repro.runner import ResultCache

        slow = Job.make(
            SystemRef.baseline4(), "deft",
            TrafficSpec.make("uniform", rate=0.006),
            SimulationConfig(warmup_cycles=2_000, measure_cycles=8_000,
                             drain_cycles=20_000),
        )
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(
            backend=ProcessPoolBackend(workers=1, timeout=0.001), cache=cache
        )
        report = runner.run([slow])
        assert report.errors
        assert cache.get(slow) is None

    def test_progress_callback_fires_per_job(self):
        jobs = small_grid()[:3]
        seen = []
        ProcessPoolBackend(workers=2).run(
            jobs, on_result=lambda done, total, job, result: seen.append((done, total))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_workers_clamped_to_at_least_one(self):
        assert ProcessPoolBackend(workers=0).workers == 1

    def test_empty_job_list(self):
        assert ProcessPoolBackend(workers=2).run([]) == []


class TestNoSigalrmFallback:
    """The parent-side timeout fallback must charge every job against one
    shared wall-clock deadline, not restart the clock per collection."""

    @staticmethod
    def _fake_environment(monkeypatch, durations, timeout_log):
        """No-SIGALRM platform with scripted future wait times.

        ``durations[i]`` is how long future ``i`` keeps the parent
        waiting after the previous future resolved (a virtual clock —
        no real sleeping).
        """
        import types

        from repro.runner import backends
        from repro.runner.result import JobResult

        clock = types.SimpleNamespace(now=0.0)
        monkeypatch.setattr(
            backends, "time", types.SimpleNamespace(monotonic=lambda: clock.now)
        )
        # A platform without SIGALRM (e.g. Windows).
        monkeypatch.setattr(backends, "signal", types.SimpleNamespace())

        class FakeFuture:
            def __init__(self, job, duration):
                self.job, self.duration = job, duration

            def result(self, timeout=None):
                timeout_log.append(timeout)
                if timeout is None or self.duration <= timeout:
                    clock.now += self.duration
                    return JobResult(job_key=self.job.key(), ok=True)
                clock.now += timeout
                import concurrent.futures

                raise concurrent.futures.TimeoutError()

            def cancel(self):
                return False

        class FakeExecutor:
            def __init__(self, *args, **kwargs):
                self._durations = iter(durations)

            def submit(self, fn, job, timeout, use_session=True):
                return FakeFuture(job, next(self._durations))

            def shutdown(self, **kwargs):
                pass

        monkeypatch.setattr(
            backends.concurrent.futures, "ProcessPoolExecutor", FakeExecutor
        )

    def test_slow_early_job_consumes_the_shared_budget(self, monkeypatch):
        """Regression: job 2 used to get a fresh per-collection budget
        after job 1 had already burnt most of the wall clock."""
        waits: list = []
        self._fake_environment(monkeypatch, durations=[5.0, 5.0], timeout_log=waits)
        jobs = small_grid()[:2]
        results = ProcessPoolBackend(workers=2, timeout=6.0).run(jobs)
        # One wave of 2 workers -> shared deadline at t=6. Job 1 resolves
        # at t=5; job 2 only has 1s of budget left, not a fresh 6s.
        assert results[0].ok
        assert not results[1].ok and "timed out" in results[1].error
        assert waits[0] == pytest.approx(6.0)
        assert waits[1] == pytest.approx(1.0)

    def test_budget_scales_with_serial_waves(self, monkeypatch):
        """3 jobs on 1 worker legitimately need 3 per-job budgets."""
        waits: list = []
        self._fake_environment(
            monkeypatch, durations=[5.0, 5.0, 5.0], timeout_log=waits
        )
        jobs = small_grid()[:3]
        results = ProcessPoolBackend(workers=1, timeout=6.0).run(jobs)
        assert all(r.ok for r in results)
        assert waits == [pytest.approx(18.0), pytest.approx(13.0),
                         pytest.approx(8.0)]

    def test_no_timeout_means_no_deadline(self, monkeypatch):
        waits: list = []
        self._fake_environment(monkeypatch, durations=[5.0], timeout_log=waits)
        results = ProcessPoolBackend(workers=1, timeout=None).run(small_grid()[:1])
        assert results[0].ok
        assert waits == [None]


class TestPersistentPool:
    """The pool (and its workers' warm sessions) survives between runs."""

    def test_executor_survives_across_runs(self):
        backend = ProcessPoolBackend(workers=2)
        try:
            first = backend.run(small_grid()[:2])
            executor = backend._executor
            assert executor is not None
            second = backend.run(small_grid()[2:4])
            assert backend._executor is executor
        finally:
            backend.close()
        assert backend._executor is None
        assert all(r.ok for r in first + second)

    def test_multi_round_results_match_serial(self):
        """The adaptive Monte Carlo shape: several runs on one backend."""
        jobs = small_grid()
        serial = SerialBackend().run(jobs)
        backend = ProcessPoolBackend(workers=2)
        try:
            pooled = backend.run(jobs[:2]) + backend.run(jobs[2:])
        finally:
            backend.close()
        assert pooled == serial

    def test_close_then_run_recreates_pool(self):
        backend = ProcessPoolBackend(workers=1)
        try:
            backend.run(small_grid()[:1])
            backend.close()
            results = backend.run(small_grid()[1:2])
            assert results[0].ok
        finally:
            backend.close()

    def test_non_persistent_opt_out(self):
        backend = ProcessPoolBackend(workers=1, persistent=False)
        results = backend.run(small_grid()[:1])
        assert results[0].ok
        assert backend._executor is None

    def test_worker_session_survives_rounds(self):
        """The satellite's point: round 2 is served by warm sessions, so
        the per-round algorithm (DeFT offline optimization) build cost
        disappears. Observed via the worker-side session stats."""
        backend = ProcessPoolBackend(workers=1)
        try:
            backend.run(small_grid()[:1])
            executor = backend._executor
            before = executor.submit(_worker_session_counters).result()
            backend.run(small_grid()[1:2])
            after = executor.submit(_worker_session_counters).result()
        finally:
            backend.close()
        # Same process, same session: the second round added hits, and no
        # new system build happened (both jobs share the topology). Only
        # deltas are asserted — under the fork start method a worker
        # inherits whatever warm session the parent process had.
        assert after[("system", "hit")] > before.get(("system", "hit"), 0)
        assert after.get(("system", "miss"), 0) == before.get(("system", "miss"), 0)


class TestExperimentEquivalence:
    """`deft experiment --workers N` must reproduce the serial figures."""

    @pytest.mark.slow
    def test_fig8a_parallel_matches_serial(self):
        from repro.experiments import fig8

        serial = fig8.fig8a(scale=0.05)
        parallel = fig8.fig8a(
            scale=0.05,
            runner=CampaignRunner(backend=ProcessPoolBackend(workers=2)),
        )
        assert parallel.data == serial.data
