"""Variance-reduced Monte Carlo: strata, weighted stats, sharded rounds."""

import math
import random
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.reachability import average_reachability
from repro.errors import ConfigurationError, FaultModelError
from repro.fault.model import all_fault_patterns, random_stratified_fault_state
from repro.montecarlo import (
    admissible_chiplet_patterns,
    batch_mean_std,
    enumerate_strata,
    importance_estimate,
    importance_proposal,
    normal_mean_interval,
    normal_mean_intervals,
    run_montecarlo,
    sample_mean_std,
    stratified_estimate,
    stratum_scores,
    stratum_sequence,
    wilson_from_variance,
    wilson_interval,
    wilson_intervals,
)
from repro.montecarlo.campaign import montecarlo_jobs
from repro.routing.compiled import compile_routes
from repro.routing.registry import make_algorithm
from repro.runner import (
    CampaignRunner,
    Job,
    ResultCache,
    SystemRef,
    TrafficSpec,
    execute_job,
)
from repro.config import SimulationConfig

TINY = SimulationConfig(warmup_cycles=30, measure_cycles=120, drain_cycles=1_500)


def stratum_job(stratum, k=None, index=0, seed=0, algorithm="rc"):
    if k is None:
        k = sum(stratum) if stratum else 2
    return Job.make(
        SystemRef.baseline4(),
        algorithm,
        TrafficSpec.make("uniform", rate=0.0),
        TINY,
        seed=seed,
        faults_mode="sample",
        fault_k=k,
        fault_sample=index,
        fault_stratum=stratum,
        kind="reachability",
    )


class TestStratumSpec:
    def test_stratum_enters_canonical_only_when_set(self):
        plain = stratum_job(()).canonical()
        assert "fault_stratum" not in plain

        split = stratum_job((1, 0, 0, 1, 0, 0, 0, 0)).canonical()
        assert split["fault_stratum"] == [1, 0, 0, 1, 0, 0, 0, 0]

    def test_uniform_sample_keys_unchanged_by_stratification_feature(self):
        """Legacy cache entries must stay addressable."""
        job = stratum_job(())
        assert job.fault_stratum == ()
        twin = Job.make(
            SystemRef.baseline4(), "rc",
            TrafficSpec.make("uniform", rate=0.0), TINY,
            seed=0, faults_mode="sample", fault_k=2, fault_sample=0,
            kind="reachability",
        )
        assert job.key() == twin.key()

    def test_stratum_must_sum_to_fault_k(self):
        with pytest.raises(ConfigurationError):
            stratum_job((1, 1, 0, 0, 0, 0, 0, 0), k=3)
        with pytest.raises(ConfigurationError):
            stratum_job((-1, 3, 0, 0, 0, 0, 0, 0), k=2)

    def test_stratum_jobs_with_distinct_coordinates_have_distinct_keys(self):
        a = stratum_job((2, 0, 0, 0, 0, 0, 0, 0))
        b = stratum_job((0, 2, 0, 0, 0, 0, 0, 0))
        assert a.key() != b.key()


class TestStratifiedFaultSampler:
    def test_split_composition_draws_exact_per_direction_counts(self, system4):
        composition = (2, 1, 0, 3, 1, 0, 0, 2)
        state = random_stratified_fault_state(
            system4, composition, random.Random(7)
        )
        assert state.num_faults == sum(composition)
        for chiplet in range(4):
            assert len(state.chiplet_down_pattern(chiplet)) == composition[2 * chiplet]
            assert len(state.chiplet_up_pattern(chiplet)) == composition[2 * chiplet + 1]
        assert not state.disconnects_any_chiplet()

    def test_split_draw_is_deterministic_in_rng_state(self, system4):
        composition = (1, 2, 0, 0, 3, 0, 0, 1)
        a = random_stratified_fault_state(system4, composition, random.Random(3))
        b = random_stratified_fault_state(system4, composition, random.Random(3))
        assert a.faults == b.faults

    def test_totals_layout_still_supported(self, system4):
        state = random_stratified_fault_state(
            system4, (3, 0, 2, 1), random.Random(1)
        )
        counts = [
            len(state.chiplet_down_pattern(c)) + len(state.chiplet_up_pattern(c))
            for c in range(4)
        ]
        assert counts == [3, 0, 2, 1]

    def test_disconnecting_direction_count_rejected(self, system4):
        # 4 down faults on a 4-VL chiplet would disconnect it.
        with pytest.raises(FaultModelError):
            random_stratified_fault_state(
                system4, (4, 0, 0, 0, 0, 0, 0, 0), random.Random(0)
            )

    def test_wrong_length_rejected(self, system4):
        with pytest.raises(FaultModelError):
            random_stratified_fault_state(system4, (1, 1, 0), random.Random(0))

    def test_split_draw_is_conditionally_uniform(self, system4):
        """Every pattern of a small stratum appears at plausible frequency."""
        composition = (1, 1, 0, 0, 0, 0, 0, 0)  # 4 * 4 = 16 patterns
        rng = random.Random(0)
        seen = Counter(
            random_stratified_fault_state(system4, composition, rng).faults
            for _ in range(1600)
        )
        assert len(seen) == 16
        assert min(seen.values()) > 50  # expectation 100 each


class TestStratumExecution:
    def test_stratified_reachability_job_runs_and_respects_stratum(self):
        job = stratum_job((1, 0, 2, 0, 0, 1, 0, 0))
        result = execute_job(job)
        assert result.ok, result.error
        assert 0.0 < result.reachability <= 1.0

    def test_same_key_same_value_across_runs(self):
        job = stratum_job((0, 1, 1, 0, 0, 0, 1, 1), seed=9, index=3)
        assert execute_job(job).reachability == execute_job(job).reachability

    def test_distinct_ordinals_draw_distinct_patterns_typically(self):
        values = {
            execute_job(stratum_job((2, 1, 1, 0, 1, 1, 1, 1), index=i)).reachability
            for i in range(6)
        }
        # rc reachability is constant within a direction-split stratum.
        assert len(values) == 1


class TestEnumerateStrata:
    def test_weights_and_pattern_counts_match_brute_force(self, system4):
        """Exact combinatorial weights vs explicit pattern enumeration."""
        k = 2
        strata = enumerate_strata(system4, k)
        brute = Counter()
        for state in all_fault_patterns(system4, k):
            coords = []
            for c in range(4):
                coords += [
                    len(state.chiplet_down_pattern(c)),
                    len(state.chiplet_up_pattern(c)),
                ]
            brute[tuple(coords)] += 1
        assert {s.composition: s.patterns for s in strata} == dict(brute)
        total = sum(brute.values())
        for s in strata:
            assert s.weight == pytest.approx(s.patterns / total)
        assert sum(s.weight for s in strata) == pytest.approx(1.0)

    def test_pattern_total_matches_admissible_convolution(self, system4):
        """Sum over strata == convolution of per-chiplet admissible counts."""
        for k in (1, 3, 5):
            strata = enumerate_strata(system4, k)
            conv = {0: 1}
            for _ in range(4):
                nxt = {}
                for j in range(0, 2 * 4 + 1):
                    a = admissible_chiplet_patterns(4, j)
                    if not a:
                        continue
                    for base, count in conv.items():
                        if base + j <= k:
                            nxt[base + j] = nxt.get(base + j, 0) + count * a
                conv = nxt
            assert sum(s.patterns for s in strata) == conv[k]

    def test_compositions_exclude_disconnecting_direction_counts(self, system4):
        for s in enumerate_strata(system4, 7):
            assert all(count <= 3 for count in s.composition)
            assert sum(s.composition) == 7

    def test_admissible_chiplet_patterns_edge_cases(self):
        assert admissible_chiplet_patterns(4, 0) == 1
        assert admissible_chiplet_patterns(4, 7) == 0  # must disconnect a side
        assert admissible_chiplet_patterns(4, 8) == 0
        assert admissible_chiplet_patterns(4, 9) == 0
        # A(v, j) == sum of C(v,d) C(v,u) over admissible splits.
        for j in range(0, 9):
            split_sum = sum(
                math.comb(4, d) * math.comb(4, j - d)
                for d in range(max(0, j - 3), min(3, j) + 1)
            )
            assert admissible_chiplet_patterns(4, j) == split_sum

    def test_stratum_cap_enforced(self, system4):
        with pytest.raises(ConfigurationError):
            enumerate_strata(system4, 6, max_strata=10)


class TestScoresAndProposal:
    def test_rc_scores_reproduce_exact_mean(self, system4):
        """rc is count-symmetric: score-implied mean == exact decomposition."""
        algorithm = make_algorithm("rc", system4)
        routes = compile_routes(algorithm)
        for k in (2, 3):
            strata = enumerate_strata(system4, k)
            scores = stratum_scores(system4, routes, strata)
            implied = sum(
                s.weight * (1.0 - score) for s, score in zip(strata, scores)
            )
            exact = average_reachability(system4, algorithm, k)
            assert implied == pytest.approx(exact, abs=1e-12)

    def test_scores_without_routes_are_neutral(self, system4):
        strata = enumerate_strata(system4, 2)
        assert stratum_scores(system4, None, strata) == [0.0] * len(strata)

    def test_proposal_is_a_distribution_with_bounded_ratios(self, system4):
        strata = enumerate_strata(system4, 3)
        scores = [float(i % 5) / 5.0 for i in range(len(strata))]
        lam = 0.25
        proposal = importance_proposal(
            [s.weight for s in strata], scores, lam=lam
        )
        assert sum(proposal) == pytest.approx(1.0)
        assert all(q > 0 for q in proposal)
        # Defensive mixture bounds every likelihood ratio by 1 / lam.
        for s, q in zip(strata, proposal):
            assert s.weight / q <= 1.0 / lam + 1e-9

    def test_proposal_validation(self):
        with pytest.raises(ConfigurationError):
            importance_proposal([0.5, 0.5], [0.0])
        with pytest.raises(ConfigurationError):
            importance_proposal([], [])
        with pytest.raises(ConfigurationError):
            importance_proposal([1.0], [0.0], lam=0.0)
        with pytest.raises(ConfigurationError):
            importance_proposal([1.0], [0.0], floor=0.0)

    def test_stratum_sequence_deterministic_and_windowed(self):
        proposal = [0.1, 0.2, 0.3, 0.4]
        full = stratum_sequence(proposal, seed=5, fault_count=3, start=0, count=40)
        again = stratum_sequence(proposal, seed=5, fault_count=3, start=0, count=40)
        assert full == again
        head = stratum_sequence(proposal, seed=5, fault_count=3, start=0, count=15)
        tail = stratum_sequence(proposal, seed=5, fault_count=3, start=15, count=25)
        assert head + tail == full

    def test_stratum_sequence_tracks_proposal_mass(self):
        proposal = [0.7, 0.2, 0.1]
        draws = stratum_sequence(proposal, seed=1, fault_count=2, start=0, count=3000)
        freq = Counter(draws)
        for index, q in enumerate(proposal):
            assert freq[index] / 3000 == pytest.approx(q, abs=0.03)


class TestWeightedStats:
    def test_wilson_from_variance_narrows_with_smaller_variance(self):
        wide = wilson_from_variance(0.5, 1e-2, 100)
        narrow = wilson_from_variance(0.5, 1e-6, 100)
        assert narrow.half_width < wide.half_width

    def test_wilson_from_variance_always_contains_the_mean(self):
        for mean, var, n in [
            (1.0, 0.0, 50), (0.0, 0.0, 50), (0.5, 0.0, 3),
            (0.9999999999999997, 1e-30, 1000), (0.5, 1e-4, 10),
        ]:
            assert wilson_from_variance(mean, var, n).contains(mean)

    def test_wilson_from_variance_zero_variance_falls_back_to_raw_n(self):
        few = wilson_from_variance(0.5, 0.0, 10)
        many = wilson_from_variance(0.5, 0.0, 1000)
        assert many.half_width < few.half_width
        with pytest.raises(ValueError):
            wilson_from_variance(0.5, 1e-4, 0)
        with pytest.raises(ValueError):
            wilson_from_variance(1.5, 1e-4, 10)

    def test_stratified_estimate_is_the_exact_weighted_mean(self):
        estimate = stratified_estimate(
            [(0.5, [0.2, 0.2]), (0.3, [0.6, 0.6]), (0.2, [1.0, 1.0])]
        )
        expected = 0.5 * 0.2 + 0.3 * 0.6 + 0.2 * 1.0
        assert estimate.mean == pytest.approx(expected, abs=1e-15)
        # Constant within every stratum -> exact, degenerate interval.
        assert estimate.variance == 0.0
        assert estimate.interval.half_width <= 1.1e-9
        assert estimate.interval.contains(expected)
        assert estimate.ess == estimate.n == 6

    def test_stratified_estimate_renormalizes_over_sampled_strata(self):
        partial = stratified_estimate([(0.6, [0.5, 0.7]), (0.4, [])])
        assert partial.mean == pytest.approx(0.6, abs=1e-12)
        assert partial.n == 2

    def test_single_sample_strata_borrow_pooled_variance(self):
        lone = stratified_estimate([(0.5, [0.4, 0.6]), (0.5, [0.5])])
        assert lone.variance > 0.0
        # With no replicated stratum at all the variance is unknown and
        # the interval must fall back to the (wide) raw-n Wilson width.
        blind = stratified_estimate([(0.5, [0.4]), (0.5, [0.6])])
        assert blind.variance == 0.0
        assert blind.interval.half_width > 0.01

    def test_stratified_estimate_validation(self):
        with pytest.raises(ValueError):
            stratified_estimate([])
        with pytest.raises(ValueError):
            stratified_estimate([(0.5, [])])
        with pytest.raises(ValueError):
            stratified_estimate([(-0.5, [0.1])])

    def test_importance_estimate_with_flat_ratios_matches_plain_mean(self):
        values = [0.2, 0.4, 0.6, 0.8]
        estimate = importance_estimate([1.0] * 4, values)
        assert estimate.mean == pytest.approx(0.5)
        assert estimate.ess == pytest.approx(4.0)

    def test_importance_reweighting_is_self_normalizing(self):
        """Scaling every ratio by a constant must not move the estimate."""
        ratios = [0.5, 2.0, 1.0, 0.25]
        values = [0.1, 0.9, 0.5, 0.3]
        a = importance_estimate(ratios, values)
        b = importance_estimate([10 * r for r in ratios], values)
        assert a.mean == pytest.approx(b.mean, abs=1e-15)
        assert a.ess == pytest.approx(b.ess, abs=1e-9)

    def test_importance_ess_collapses_under_skewed_ratios(self):
        skewed = importance_estimate([100.0, 0.01, 0.01, 0.01], [0.5] * 4)
        assert skewed.ess < 1.1

    def test_importance_estimate_validation(self):
        with pytest.raises(ValueError):
            importance_estimate([1.0], [0.5, 0.6])
        with pytest.raises(ValueError):
            importance_estimate([], [])
        with pytest.raises(ValueError):
            importance_estimate([-1.0], [0.5])
        with pytest.raises(ValueError):
            importance_estimate([0.0], [0.5])


class TestBatchStatsBitIdentity:
    """The numpy batch paths must equal the scalar paths bit for bit."""

    def groups(self, rng, count):
        return [
            [rng.uniform(0.0, 1.0) for _ in range(rng.randint(1, 9))]
            for _ in range(count)
        ]

    def test_batch_mean_std_matches_scalar_bitwise(self):
        rng = random.Random(42)
        for _ in range(25):
            groups = self.groups(rng, rng.randint(1, 8))
            batch = batch_mean_std(groups)
            scalar = [sample_mean_std(g) for g in groups]
            assert batch == scalar  # exact float equality, no approx

    def test_normal_mean_intervals_match_scalar_bitwise(self):
        rng = random.Random(7)
        for clamp in (None, (0.0, 1.0)):
            groups = self.groups(rng, 6)
            batch = normal_mean_intervals(groups, clamp=clamp)
            scalar = [normal_mean_interval(g, clamp=clamp) for g in groups]
            assert batch == scalar

    def test_wilson_intervals_match_scalar_bitwise(self):
        rng = random.Random(3)
        trials = [rng.randint(1, 10_000) for _ in range(40)]
        successes = [rng.randint(0, t) for t in trials]
        batch = wilson_intervals(successes, trials)
        scalar = [wilson_interval(s, t) for s, t in zip(successes, trials)]
        assert batch == scalar

    def test_batch_validation_mirrors_scalar(self):
        with pytest.raises(ValueError):
            batch_mean_std([[1.0], []])
        with pytest.raises(ValueError):
            wilson_intervals([1], [0])
        with pytest.raises(ValueError):
            wilson_intervals([2], [1])
        with pytest.raises(ValueError):
            wilson_intervals([1, 2], [3])


class TestWeightedCampaigns:
    def test_stratified_mean_is_exact_for_rc_at_small_k(self, system4):
        """rc is constant within direction-split strata: coverage => exact."""
        for k in (2, 3):
            report = run_montecarlo(
                SystemRef.baseline4(), ("rc",), (k,), 10, seed=0,
                sampler="stratified",
            )
            point = report.results[0]
            exact = average_reachability(system4, make_algorithm("rc", system4), k)
            assert point.primary.mean == pytest.approx(exact, abs=1e-9)
            assert point.primary.interval.contains(exact)
            assert point.strata == len(enumerate_strata(system4, k))
            # First round covers every stratum at least twice.
            assert point.completed >= 2 * point.strata

    def test_stratified_unbiased_for_mtr(self, system4):
        """mtr is NOT count-symmetric — the reweighting still centers."""
        report = run_montecarlo(
            SystemRef.baseline4(), ("mtr",), (2,), 150, seed=1,
            sampler="stratified", confidence=0.99,
        )
        point = report.results[0]
        exact = average_reachability(system4, make_algorithm("mtr", system4), 2)
        assert (
            point.primary.interval.contains(exact)
            or point.primary.mean == pytest.approx(exact, abs=1e-12)
        )

    def test_importance_unbiased_at_small_k(self, system4):
        report = run_montecarlo(
            SystemRef.baseline4(), ("rc",), (2,), 250, seed=2,
            sampler="importance", confidence=0.99,
        )
        point = report.results[0]
        exact = average_reachability(system4, make_algorithm("rc", system4), 2)
        assert point.primary.interval.contains(exact)
        assert point.ess is not None and 0 < point.ess <= point.completed
        assert point.strata > 0

    def test_degenerate_point_estimate_contains_certainty(self):
        """deft is fully reachable at small k: weighted paths handle p=1."""
        for sampler in ("stratified", "importance"):
            report = run_montecarlo(
                SystemRef.baseline4(), ("deft",), (2,), 100, seed=0,
                sampler=sampler,
            )
            point = report.results[0]
            assert point.primary.interval.contains(1.0)
            assert point.primary.mean == pytest.approx(1.0, abs=1e-9)

    def test_weighted_samplers_reject_latency_metric(self):
        with pytest.raises(ValueError):
            run_montecarlo(
                SystemRef.baseline4(), ("deft",), (1,), 4, metric="latency",
                sampler="stratified", traffic=TrafficSpec.make("uniform", rate=0.004),
                config=TINY,
            )

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError):
            run_montecarlo(
                SystemRef.baseline4(), ("rc",), (1,), 4, sampler="antithetic"
            )

    def test_stratified_adaptive_stops_at_exactness(self, system4):
        """Zero within-stratum variance => stop right after full coverage."""
        strata = len(enumerate_strata(system4, 3))
        report = run_montecarlo(
            SystemRef.baseline4(), ("rc",), (3,), 20, seed=0,
            sampler="stratified", target_ci_width=0.002,
            max_samples=50 * strata,
        )
        assert report.results[0].completed == 2 * strata

    def test_adaptive_cap_respected_exactly_by_weighted_samplers(self, system4):
        """Unreachable target: every sampler lands exactly on max_samples."""
        strata = len(enumerate_strata(system4, 2))
        cap = 2 * strata + 31
        report = run_montecarlo(
            SystemRef.baseline4(), ("rc",), (2,), 10, seed=0,
            sampler="stratified", target_ci_width=1e-12, max_samples=cap,
        )
        assert report.results[0].completed == cap

        report = run_montecarlo(
            SystemRef.baseline4(), ("rc",), (2,), 6, seed=0,
            sampler="importance", target_ci_width=1e-12, max_samples=20,
        )
        point = report.results[0]
        assert point.completed == 20  # 6 -> 12 -> 20, capped exactly

    def test_first_round_exceeding_cap_is_rejected_upfront(self):
        with pytest.raises(ValueError):
            run_montecarlo(
                SystemRef.baseline4(), ("rc",), (3,), 10, seed=0,
                sampler="stratified", target_ci_width=0.01, max_samples=40,
            )

    def test_uniform_adaptive_cap_regression_unchanged(self):
        """The legacy doubling schedule must still hit the cap exactly."""
        report = run_montecarlo(
            SystemRef.baseline4(), ("mtr",), (4,), 6, seed=0,
            target_ci_width=1e-9, max_samples=20,
        )
        point = report.results[0]
        assert point.requested == 20
        indices = sorted(job.fault_sample for job in report.campaign.jobs)
        assert indices == list(range(20))

    def test_weighted_rounds_are_cache_incremental(self, tmp_path):
        args = dict(
            seed=0, sampler="importance", target_ci_width=1e-12, max_samples=30,
        )
        run_montecarlo(
            SystemRef.baseline4(), ("rc",), (2,), 10,
            runner=CampaignRunner(cache=ResultCache(tmp_path)), **args,
        )
        warm = run_montecarlo(
            SystemRef.baseline4(), ("rc",), (2,), 10,
            runner=CampaignRunner(cache=ResultCache(tmp_path)), **args,
        )
        assert warm.campaign.executed == 0


class TestShardedRounds:
    ARGS = dict(seed=4, sampler="stratified", target_ci_width=0.002)

    def drive(self, cache_dir, rendezvous, shard=None):
        with CampaignRunner(cache=ResultCache(cache_dir)) as runner:
            return run_montecarlo(
                SystemRef.baseline4(), ("rc",), (2,), 12, runner=runner,
                max_samples=4000, shard=shard, rendezvous_dir=rendezvous,
                round_timeout=60, **self.ARGS,
            )

    def signature(self, report):
        point = report.results[0]
        return (
            point.completed,
            point.primary.mean,
            point.primary.std,
            point.primary.interval,
            point.strata,
            point.weighted.variance,
        )

    def test_sharded_drivers_bit_identical_to_serial(self, tmp_path):
        serial = self.drive(tmp_path / "cache-serial", None)
        shared = tmp_path / "cache-shared"
        with ThreadPoolExecutor(2) as pool:
            futures = [
                pool.submit(self.drive, shared, tmp_path / "rdv", (i, 2))
                for i in range(2)
            ]
            sharded = [f.result() for f in futures]
        assert (
            self.signature(serial)
            == self.signature(sharded[0])
            == self.signature(sharded[1])
        )
        # Each driver executed only its slice; the union covers the round.
        executed = [r.campaign.executed for r in sharded]
        assert sum(executed) == serial.campaign.executed
        assert all(count > 0 for count in executed)

    def test_shard_requires_rendezvous_and_cache(self, tmp_path):
        with pytest.raises(ValueError):
            run_montecarlo(
                SystemRef.baseline4(), ("rc",), (2,), 12,
                runner=CampaignRunner(cache=ResultCache(tmp_path)),
                max_samples=4000, shard=(0, 2), **self.ARGS,
            )
        with pytest.raises(ValueError):
            run_montecarlo(
                SystemRef.baseline4(), ("rc",), (2,), 12,
                runner=CampaignRunner(),
                max_samples=4000, shard=(0, 2),
                rendezvous_dir=tmp_path / "rdv", **self.ARGS,
            )

    def test_rendezvous_publish_gather_roundtrip(self, tmp_path):
        from repro.distributed import RendezvousError, RoundRendezvous

        a = RoundRendezvous(tmp_path, "campaign", 0, 2)
        b = RoundRendezvous(tmp_path, "campaign", 1, 2)
        a.publish(0, ["deadbeef"])
        b.publish(0, [])
        assert a.gather(0, timeout=5.0) == {0: ["deadbeef"], 1: []}
        assert b.gather(0, timeout=5.0) == {0: ["deadbeef"], 1: []}
        with pytest.raises(RendezvousError):
            a.gather(1, timeout=0.2, poll=0.05)

    def test_rendezvous_rejects_mismatched_split(self, tmp_path):
        from repro.distributed import RendezvousError, RoundRendezvous

        a = RoundRendezvous(tmp_path, "campaign", 0, 2)
        other = RoundRendezvous(tmp_path, "campaign", 2, 3)
        other.publish(0, [])
        a.publish(0, [])
        with pytest.raises(RendezvousError):
            a.gather(0, timeout=5.0)
