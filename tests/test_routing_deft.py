"""DeFT routing: paths, VN discipline, fault-tolerant VL selection."""

import pytest

from repro.core.tables import build_selection_tables
from repro.errors import UnroutablePacketError
from repro.fault.model import chiplet_fault_pattern, fault_free
from repro.network.flit import Packet
from repro.routing.deft import DeftRouting, VlSelectionStrategy
from repro.routing.base import Port

from .routing_helpers import minimal_hops, walk_packet


@pytest.fixture()
def deft(system4):
    return DeftRouting(system4)


class TestPathCorrectness:
    def test_every_core_pair_reaches_destination(self, system4, deft):
        cores = system4.cores[::5]  # subsample for speed
        for src in cores:
            for dst in cores:
                if src == dst:
                    continue
                path, _ = walk_packet(system4, deft, src, dst, verify_vn_rules=True)
                assert path[-1] == dst

    def test_paths_are_minimal_given_vl_bindings(self, system4, deft):
        for src in system4.cores[::7]:
            for dst in system4.cores[::6]:
                if src == dst:
                    continue
                path, packet = walk_packet(system4, deft, src, dst)
                assert len(path) - 1 == minimal_hops(system4, packet)

    def test_dram_to_core_and_back(self, system4, deft):
        dram = system4.drams[0]
        core = system4.cores[13]
        path, _ = walk_packet(system4, deft, dram, core, verify_vn_rules=True)
        assert path[-1] == core
        path, _ = walk_packet(system4, deft, core, dram, verify_vn_rules=True)
        assert path[-1] == dram

    def test_both_vn_branches_deliver(self, system4, deft):
        src, dst = system4.cores[0], system4.cores[40]
        for prefer in (0, 1):
            path, _ = walk_packet(
                system4, deft, src, dst, verify_vn_rules=True, prefer_vn=prefer
            )
            assert path[-1] == dst

    def test_intra_chiplet_stays_on_chiplet(self, system4, deft):
        routers = system4.chiplet_routers(1)
        src, dst = routers[0].id, routers[15].id
        path, _ = walk_packet(system4, deft, src, dst)
        assert all(system4.routers[r].layer == 1 for r in path)

    def test_inter_chiplet_passes_interposer(self, system4, deft):
        src = system4.chiplet_routers(0)[5].id
        dst = system4.chiplet_routers(3)[10].id
        path, _ = walk_packet(system4, deft, src, dst)
        assert any(system4.routers[r].is_interposer for r in path)


class TestVnAssignment:
    def test_inter_chiplet_nonboundary_starts_vn0(self, system4, deft):
        src = system4.router_id(0, 0, 1)  # not a boundary router
        dst = system4.chiplet_routers(1)[0].id
        for _ in range(4):
            packet = Packet(0, src, dst, 8, 0)
            deft.prepare_packet(packet)
            assert packet.vn == 0

    def test_intra_chiplet_round_robins(self, system4, deft):
        src = system4.router_id(0, 0, 1)
        dst = system4.router_id(0, 3, 2)
        vns = []
        for _ in range(4):
            packet = Packet(0, src, dst, 8, 0)
            deft.prepare_packet(packet)
            vns.append(packet.vn)
        assert set(vns) == {0, 1}

    def test_interposer_source_round_robins(self, system4, deft):
        src = system4.drams[0]
        dst = system4.cores[0]
        vns = set()
        for _ in range(4):
            packet = Packet(0, src, dst, 8, 0)
            deft.prepare_packet(packet)
            vns.add(packet.vn)
        assert vns == {0, 1}

    def test_reset_runtime_state_restarts_round_robin(self, system4, deft):
        src = system4.router_id(0, 0, 1)
        dst = system4.router_id(0, 3, 2)
        packet = Packet(0, src, dst, 8, 0)
        deft.prepare_packet(packet)
        first = packet.vn
        deft.reset_runtime_state()
        packet = Packet(1, src, dst, 8, 0)
        deft.prepare_packet(packet)
        assert packet.vn == first


class TestVlSelection:
    def test_fault_free_uses_optimized_table(self, system4, deft):
        tables = build_selection_tables(system4)
        src = system4.chiplet_routers(0)[0].id
        dst = system4.chiplet_routers(1)[0].id
        packet = Packet(0, src, dst, 8, 0)
        deft.prepare_packet(packet)
        expected_local = tables[0].vl_for_router(0, frozenset())
        assert system4.vls[packet.down_vl].local_index == expected_local

    def test_selection_adapts_to_fault(self, system4, deft):
        state = chiplet_fault_pattern(system4, 0, down_faulty=[0])
        deft.set_fault_state(state)
        try:
            for router in system4.chiplet_routers(0):
                packet = Packet(0, router.id, system4.chiplet_routers(2)[0].id, 8, 0)
                deft.prepare_packet(packet)
                link = system4.vls[packet.down_vl]
                assert link.local_index != 0
        finally:
            deft.set_fault_state(fault_free(system4))

    def test_up_vl_avoids_up_faults(self, system4, deft):
        state = chiplet_fault_pattern(system4, 1, up_faulty=[0, 1])
        deft.set_fault_state(state)
        try:
            src = system4.chiplet_routers(0)[3].id
            for dst_router in system4.chiplet_routers(1)[::3]:
                path, packet = walk_packet(system4, deft, src, dst_router.id)
                assert system4.vls[packet.up_vl].local_index in (2, 3)
                assert path[-1] == dst_router.id
        finally:
            deft.set_fault_state(fault_free(system4))

    def test_full_reachability_under_heavy_faults(self, system4, deft):
        # 3 of 4 down channels dead on chiplet 0, 3 of 4 up dead on chiplet 3.
        state = chiplet_fault_pattern(system4, 0, down_faulty=[0, 1, 2]).with_faults(
            chiplet_fault_pattern(system4, 3, up_faulty=[1, 2, 3]).faults
        )
        deft.set_fault_state(state)
        try:
            for src in (r.id for r in system4.chiplet_routers(0)[::5]):
                for dst in (r.id for r in system4.chiplet_routers(3)[::5]):
                    assert deft.is_routable(src, dst)
                    path, _ = walk_packet(system4, deft, src, dst, verify_vn_rules=True)
                    assert path[-1] == dst
        finally:
            deft.set_fault_state(fault_free(system4))

    def test_unroutable_when_chiplet_disconnected(self, system4, deft):
        state = chiplet_fault_pattern(system4, 0, down_faulty=[0, 1, 2, 3])
        deft.set_fault_state(state)
        try:
            src = system4.chiplet_routers(0)[0].id
            dst = system4.chiplet_routers(1)[0].id
            assert not deft.is_routable(src, dst)
            with pytest.raises(UnroutablePacketError):
                deft.prepare_packet(Packet(0, src, dst, 8, 0))
            # Intra-chiplet traffic is unaffected.
            assert deft.is_routable(src, system4.chiplet_routers(0)[5].id)
        finally:
            deft.set_fault_state(fault_free(system4))


class TestStrategies:
    def test_distance_strategy_picks_nearest(self, system4):
        algo = DeftRouting(system4, VlSelectionStrategy.DISTANCE)
        assert algo.name == "DeFT-Dis"
        src = system4.router_id(0, 0, 0)  # nearest VL is (1,0) = local idx 0
        packet = Packet(0, src, system4.chiplet_routers(1)[0].id, 8, 0)
        algo.prepare_packet(packet)
        assert system4.vls[packet.down_vl].local_index == 0

    def test_random_strategy_spreads_choices(self, system4):
        algo = DeftRouting(system4, VlSelectionStrategy.RANDOM, seed=3)
        assert algo.name == "DeFT-Ran"
        src = system4.router_id(0, 0, 0)
        dst = system4.chiplet_routers(1)[0].id
        chosen = set()
        for i in range(40):
            packet = Packet(i, src, dst, 8, 0)
            algo.prepare_packet(packet)
            chosen.add(system4.vls[packet.down_vl].local_index)
        assert len(chosen) >= 3

    def test_random_strategy_respects_faults(self, system4):
        algo = DeftRouting(system4, VlSelectionStrategy.RANDOM, seed=5)
        algo.set_fault_state(chiplet_fault_pattern(system4, 0, down_faulty=[0, 2]))
        src = system4.router_id(0, 0, 0)
        dst = system4.chiplet_routers(1)[0].id
        for i in range(20):
            packet = Packet(i, src, dst, 8, 0)
            algo.prepare_packet(packet)
            assert system4.vls[packet.down_vl].local_index in (1, 3)

    def test_strategies_are_deterministic_after_reset(self, system4):
        algo = DeftRouting(system4, VlSelectionStrategy.RANDOM, seed=11)
        src = system4.router_id(0, 2, 2)
        dst = system4.chiplet_routers(2)[4].id

        def sample():
            out = []
            for i in range(10):
                packet = Packet(i, src, dst, 8, 0)
                algo.prepare_packet(packet)
                out.append(packet.down_vl)
            return out

        first = sample()
        algo.reset_runtime_state()
        assert sample() == first
