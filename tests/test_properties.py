"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import SimulationConfig
from repro.core.optimizer import CompositionOptimizer, ExhaustiveOptimizer
from repro.core.vl_selection import (
    SelectionProblem,
    distance_based_selection,
    selection_cost,
    vl_loads,
)
from repro.core.vn import VN0, VN1, PortClass, allowed_output_vns
from repro.fault.model import DirectedVL, FaultState, VLDirection
from repro.network.simulator import Simulator
from repro.routing.deft import DeftRouting
from repro.topology.geometry import manhattan, xy_path
from repro.topology.presets import baseline_4_chiplets
from repro.traffic.synthetic import UniformTraffic

SYSTEM = baseline_4_chiplets()


# ---------------------------------------------------------------------------
# geometry
# ---------------------------------------------------------------------------

coords = st.tuples(st.integers(0, 7), st.integers(0, 7))


@given(a=coords, b=coords)
def test_xy_path_endpoints_and_length(a, b):
    path = xy_path(a[0], a[1], b[0], b[1])
    assert path[0] == a and path[-1] == b
    assert len(path) == manhattan(*a, *b) + 1
    for (x0, y0), (x1, y1) in zip(path, path[1:]):
        assert abs(x1 - x0) + abs(y1 - y0) == 1


@given(a=coords, b=coords)
def test_manhattan_symmetry_and_triangle(a, b):
    assert manhattan(*a, *b) == manhattan(*b, *a)
    assert manhattan(*a, *a) == 0


# ---------------------------------------------------------------------------
# VN rules
# ---------------------------------------------------------------------------

port_classes = st.sampled_from(list(PortClass))
vns = st.sampled_from([VN0, VN1])


@given(in_port=port_classes, out_port=port_classes, vn=vns)
def test_allowed_vns_respect_rule1(in_port, out_port, vn):
    for vn_out in allowed_output_vns(in_port, out_port, vn):
        assert vn_out >= vn  # Rule 1: never downgrade


@given(in_port=port_classes, out_port=port_classes, vn=vns)
def test_allowed_vns_only_empty_for_rule3(in_port, out_port, vn):
    allowed = allowed_output_vns(in_port, out_port, vn)
    if not allowed:
        assert vn == VN1
        assert in_port is PortClass.HORIZONTAL
        assert out_port is PortClass.DOWN


@given(in_port=port_classes, out_port=port_classes, vn=vns)
def test_rule2_never_lands_up_horizontal_in_vn0(in_port, out_port, vn):
    allowed = allowed_output_vns(in_port, out_port, vn)
    if in_port is PortClass.UP and out_port is PortClass.HORIZONTAL:
        assert VN0 not in allowed


# ---------------------------------------------------------------------------
# VL selection optimization
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_composition_optimizer_matches_exhaustive(seed):
    rng = random.Random(seed)
    num_routers = rng.randint(2, 5)
    num_vls = rng.randint(1, 3)
    positions = set()
    while len(positions) < num_routers + num_vls:
        positions.add((rng.randrange(4), rng.randrange(4)))
    positions = sorted(positions)
    problem = SelectionProblem.uniform(
        positions[:num_routers], positions[num_routers:]
    )
    exact = ExhaustiveOptimizer().optimize(problem).cost
    fast = CompositionOptimizer().optimize(problem).cost
    assert abs(exact - fast) < 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_optimizer_never_worse_than_distance_based(seed):
    rng = random.Random(seed)
    num_routers = rng.randint(2, 8)
    num_vls = rng.randint(1, 4)
    positions = set()
    while len(positions) < num_routers + num_vls:
        positions.add((rng.randrange(5), rng.randrange(5)))
    positions = sorted(positions)
    problem = SelectionProblem.uniform(
        positions[:num_routers], positions[num_routers:]
    )
    best = CompositionOptimizer().optimize(problem)
    baseline = selection_cost(problem, distance_based_selection(problem))
    assert best.cost <= baseline + 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_loads_sum_to_total_traffic(seed):
    rng = random.Random(seed)
    num_routers = rng.randint(1, 10)
    num_vls = rng.randint(1, 4)
    problem = SelectionProblem(
        router_positions=tuple((rng.randrange(6), rng.randrange(6)) for _ in range(num_routers)),
        vl_positions=tuple((i, 0) for i in range(num_vls)),
        traffic=tuple(rng.random() for _ in range(num_routers)),
    )
    selection = [rng.randrange(num_vls) for _ in range(num_routers)]
    assert abs(sum(vl_loads(problem, selection)) - problem.total_traffic) < 1e-9


# ---------------------------------------------------------------------------
# fault model
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6), k=st.integers(0, 10))
def test_fault_state_pattern_consistency(seed, k):
    rng = random.Random(seed)
    channels = [
        DirectedVL(link.index, direction)
        for link in SYSTEM.vls
        for direction in (VLDirection.DOWN, VLDirection.UP)
    ]
    faults = rng.sample(channels, min(k, len(channels)))
    state = FaultState(SYSTEM, faults)
    for chiplet in range(SYSTEM.spec.num_chiplets):
        down = state.chiplet_down_pattern(chiplet)
        alive = state.alive_down_vls(chiplet)
        assert set(down) | set(alive) == set(range(4))
        assert not (set(down) & set(alive))


# ---------------------------------------------------------------------------
# end-to-end flit conservation
# ---------------------------------------------------------------------------

@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rate=st.sampled_from([0.002, 0.005, 0.009]),
    seed=st.integers(1, 50),
)
def test_simulation_conserves_packets(rate, seed):
    """created == delivered + dropped + in-flight, for random loads/seeds."""
    config = SimulationConfig(
        warmup_cycles=50, measure_cycles=300, drain_cycles=4_000, seed=seed
    )
    traffic = UniformTraffic(SYSTEM, rate, seed)
    sim = Simulator(SYSTEM, DeftRouting(SYSTEM), traffic, config)
    report = sim.run()
    stats = report.stats
    queued = sum(len(nic.queue) + (1 if nic.busy else 0) for nic in sim.nics)
    in_network = sim._flits_in_flight
    assert stats.packets_dropped_unroutable == 0
    assert stats.packets_delivered <= stats.packets_created
    if in_network == 0 and queued == 0:
        assert stats.packets_delivered == stats.packets_created
    assert not report.deadlocked
