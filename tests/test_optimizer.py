"""Optimization searches for Algorithm 2 / equation (7).

The composition optimizer must be *exact* for uniform traffic — verified
against the literal exhaustive Algorithm 2 on every instance small enough
to enumerate, including hypothesis-generated ones.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer import (
    CompositionOptimizer,
    ExhaustiveOptimizer,
    LocalSearchOptimizer,
    default_optimizer,
)
from repro.core.vl_selection import (
    SelectionProblem,
    distance_based_selection,
    selection_cost,
    vl_loads,
)
from repro.errors import OptimizationError


def _uniform_problem(router_positions, vl_positions, rho=0.01):
    return SelectionProblem.uniform(router_positions, vl_positions, rho=rho)


SMALL = _uniform_problem([(0, 0), (1, 0), (2, 0), (3, 0)], [(0, 0), (3, 0)])


class TestExhaustive:
    def test_finds_balanced_split(self):
        result = ExhaustiveOptimizer().optimize(SMALL)
        assert sorted(vl_loads(SMALL, result.selection)) == [2.0, 2.0]

    def test_cost_matches_recomputation(self):
        result = ExhaustiveOptimizer().optimize(SMALL)
        assert result.cost == pytest.approx(selection_cost(SMALL, result.selection))

    def test_guards_against_explosion(self):
        big = _uniform_problem([(x, y) for x in range(4) for y in range(4)],
                               [(0, 0), (3, 0), (0, 3), (3, 3)])
        with pytest.raises(OptimizationError, match="exceeds"):
            ExhaustiveOptimizer(max_sets=1000).optimize(big)

    def test_evaluates_all_sets(self):
        result = ExhaustiveOptimizer().optimize(SMALL)
        assert result.evaluations == 2 ** 4


class TestCompositionExactness:
    @pytest.mark.parametrize("routers,vls", [
        ([(0, 0), (1, 0), (2, 0)], [(0, 0), (2, 0)]),
        ([(0, 0), (1, 1), (2, 0), (0, 2)], [(1, 0), (0, 1)]),
        ([(x, 0) for x in range(6)], [(0, 0), (2, 0), (5, 0)]),
        ([(x, y) for x in range(3) for y in range(2)], [(0, 0), (2, 1)]),
    ])
    def test_matches_exhaustive(self, routers, vls):
        problem = _uniform_problem(routers, vls)
        exact = ExhaustiveOptimizer().optimize(problem)
        fast = CompositionOptimizer().optimize(problem)
        assert fast.cost == pytest.approx(exact.cost, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        num_routers=st.integers(2, 6),
        num_vls=st.integers(1, 3),
        seed=st.integers(0, 10_000),
    )
    def test_matches_exhaustive_random(self, num_routers, num_vls, seed):
        import random

        rng = random.Random(seed)
        positions = set()
        while len(positions) < num_routers + num_vls:
            positions.add((rng.randrange(5), rng.randrange(5)))
        positions = list(positions)
        problem = _uniform_problem(positions[:num_routers], positions[num_routers:])
        exact = ExhaustiveOptimizer().optimize(problem)
        fast = CompositionOptimizer().optimize(problem)
        assert fast.cost == pytest.approx(exact.cost, abs=1e-9)

    def test_handles_paper_sized_instance_quickly(self):
        problem = _uniform_problem(
            [(x, y) for y in range(4) for x in range(4)],
            [(1, 0), (2, 0), (1, 3), (2, 3)],
        )
        result = CompositionOptimizer().optimize(problem)
        loads = vl_loads(problem, result.selection)
        assert sorted(loads) == [4.0, 4.0, 4.0, 4.0]

    def test_paper_fig3b_rebalances_under_fault(self):
        """With one faulty VL the optimizer avoids the naive 8/4/4 split."""
        problem = _uniform_problem(
            [(x, y) for y in range(4) for x in range(4)],
            [(2, 0), (1, 3), (2, 3)],
        )
        result = CompositionOptimizer().optimize(problem)
        loads = sorted(vl_loads(problem, result.selection))
        naive = _uniform_problem(problem.router_positions, problem.vl_positions)
        naive_loads = sorted(vl_loads(naive, distance_based_selection(naive)))
        assert naive_loads == [4.0, 4.0, 8.0]
        assert loads in ([5.0, 5.0, 6.0], [5.0, 5.5, 5.5])
        assert result.cost < selection_cost(problem, distance_based_selection(problem))


class TestLocalSearch:
    def test_never_worse_than_distance_based(self):
        problem = SelectionProblem(
            router_positions=tuple((x, y) for y in range(4) for x in range(4)),
            vl_positions=((1, 0), (2, 0), (1, 3), (2, 3)),
            traffic=tuple(float(1 + (i % 3)) for i in range(16)),
        )
        result = LocalSearchOptimizer(restarts=4, seed=1).optimize(problem)
        baseline = selection_cost(problem, distance_based_selection(problem))
        assert result.cost <= baseline + 1e-9

    def test_matches_exhaustive_on_small_nonuniform(self):
        problem = SelectionProblem(
            router_positions=((0, 0), (1, 0), (2, 0), (3, 0)),
            vl_positions=((0, 0), (3, 0)),
            traffic=(0.5, 1.0, 2.0, 0.5),
        )
        exact = ExhaustiveOptimizer().optimize(problem)
        local = LocalSearchOptimizer(restarts=6, seed=3).optimize(problem)
        assert local.cost == pytest.approx(exact.cost, abs=1e-9)

    def test_rejects_zero_restarts(self):
        with pytest.raises(OptimizationError):
            LocalSearchOptimizer(restarts=0)


class TestDefaultOptimizer:
    def test_uniform_dispatches_to_composition(self):
        result = default_optimizer(SMALL)
        assert result.method == "composition"

    def test_small_nonuniform_dispatches_to_exhaustive(self):
        problem = SelectionProblem(
            router_positions=((0, 0), (1, 0)),
            vl_positions=((0, 0), (1, 0)),
            traffic=(1.0, 2.0),
        )
        result = default_optimizer(problem)
        assert result.method == "exhaustive"

    def test_large_nonuniform_dispatches_to_local_search(self):
        problem = SelectionProblem(
            router_positions=tuple((x, y) for y in range(4) for x in range(4)),
            vl_positions=((1, 0), (2, 0), (1, 3), (2, 3)),
            traffic=tuple(float(i % 4 + 1) for i in range(16)),
        )
        result = default_optimizer(problem)
        assert result.method == "local-search"
