"""Compiled route tables: bit-identity with the live ``route()`` path.

The contract under test (ISSUE acceptance): for every algorithm, on the
Table-1 style fault scenarios, the compiled-table path must be
*bit-identical* to live per-hop dispatch — identical decisions in
identical order (including VN preference order), identical simulation
statistics, identical reachability fractions and identical CDGs.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.cdg import build_cdg
from repro.analysis.reachability import reachability_of_state
from repro.config import SimulationConfig
from repro.errors import RoutingError
from repro.fault.model import FaultState, chiplet_fault_pattern, random_fault_state
from repro.network.flit import Packet
from repro.network.simulator import Simulator
from repro.routing.base import Port, opposite_port
from repro.routing.compiled import CompiledRoutes, compile_routes
from repro.routing.naive import NaiveRouting
from repro.routing.registry import available_algorithms, make_algorithm
from repro.topology.presets import chiplet_grid
from repro.traffic.registry import make_traffic

ALGORITHMS = ("deft", "deft-dis", "deft-ran", "deft-ada", "mtr", "rc")


def _scenarios(system):
    """Fault scenarios exercised by the equivalence suite."""
    return (
        FaultState(system),
        chiplet_fault_pattern(system, 0, down_faulty=[1]),
        chiplet_fault_pattern(system, 1, up_faulty=[0]),
        chiplet_fault_pattern(system, 0, down_faulty=[0, 2], up_faulty=[3]),
    )


def _make(name, system, state):
    algorithm = make_algorithm(name, system)
    algorithm.set_fault_state(state)
    return algorithm


def _lockstep_walk(system, live, compiled_routes, src, dst, prefer_vn=None):
    """Drive the identical route-call sequence through both paths.

    Two independent algorithm instances (same constructor arguments, same
    fault state) see the same calls in the same order, so their online
    state — DeFT's round-robin counters, RNGs — evolves identically; every
    decision must match exactly, VN preference order included.
    """
    compiled_algo = compiled_routes.algorithm
    live_packet = Packet(0, src, dst, size=8, created_cycle=0)
    compiled_packet = Packet(0, src, dst, size=8, created_cycle=0)
    live.prepare_packet(live_packet)
    compiled_algo.prepare_packet(compiled_packet)
    assert compiled_packet.vn == live_packet.vn
    assert compiled_packet.down_vl == live_packet.down_vl
    current, in_port = src, Port.LOCAL
    for _ in range(200):
        expected = live.route(live_packet, current, in_port)
        actual = compiled_routes.route(compiled_packet, current, in_port)
        assert actual == expected, (src, dst, current, in_port)
        if expected.out_port == Port.LOCAL:
            assert current == dst
            return
        router = system.routers[current]
        if expected.out_port == Port.VERTICAL:
            nxt, next_in = router.vertical_neighbor, Port.VERTICAL
        else:
            nxt = router.neighbors[expected.out_port]
            next_in = opposite_port(expected.out_port)
        chosen = expected.allowed_vns[0]
        if prefer_vn is not None and prefer_vn in expected.allowed_vns:
            chosen = prefer_vn
        live_packet.vn = chosen
        compiled_packet.vn = chosen
        current, in_port = nxt, next_in
    raise AssertionError(f"walk did not terminate: {src}->{dst}")


class TestDecisionEquivalence:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_all_pairs_lockstep(self, system4, name):
        for state in _scenarios(system4):
            live = _make(name, system4, state)
            compiled_routes = CompiledRoutes(_make(name, system4, state))
            for src in system4.pes:
                for dst in system4.pes:
                    if src == dst or not live.is_routable(src, dst):
                        continue
                    for prefer_vn in (None, 1):
                        _lockstep_walk(
                            system4, live, compiled_routes, src, dst, prefer_vn
                        )
            # DeFT's boundary down-traversal must have gone through the
            # live fallback (it is online state), never the table.
            if name.startswith("deft"):
                assert compiled_routes.stateful_calls > 0
            else:
                assert compiled_routes.stateful_calls == 0
            assert compiled_routes.table_size > 0

    def test_naive_is_compilable_too(self, system4):
        live = NaiveRouting(system4)
        compiled_routes = CompiledRoutes(NaiveRouting(system4))
        for src, dst in ((system4.cores[0], system4.cores[-1]),
                         (system4.cores[3], system4.drams[0])):
            _lockstep_walk(system4, live, compiled_routes, src, dst)


class TestFaultInvalidation:
    def test_fault_change_invalidates_route_rows(self, system4):
        algorithm = make_algorithm("mtr", system4)
        routes = CompiledRoutes(algorithm)
        src, dst = system4.cores[0], system4.cores[-1]
        packet = Packet(0, src, dst, size=8, created_cycle=0)
        algorithm.prepare_packet(packet)
        routes.route(packet, src, Port.LOCAL)
        assert routes.table_size == 1
        algorithm.set_fault_state(chiplet_fault_pattern(system4, 0, down_faulty=[0]))
        fresh = Packet(1, src, dst, size=8, created_cycle=0)
        algorithm.prepare_packet(fresh)
        decision = routes.route(fresh, src, Port.LOCAL)
        assert routes.invalidations == 1
        assert decision == algorithm.route(fresh, src, Port.LOCAL)

    def test_equal_fault_state_keeps_rows(self, system4):
        """Re-installing an equal state (a new object) must not drop rows."""
        algorithm = make_algorithm("mtr", system4)
        state_a = chiplet_fault_pattern(system4, 0, down_faulty=[1])
        algorithm.set_fault_state(state_a)
        routes = CompiledRoutes(algorithm)
        src, dst = system4.cores[0], system4.cores[-1]
        packet = Packet(0, src, dst, size=8, created_cycle=0)
        algorithm.prepare_packet(packet)
        routes.route(packet, src, Port.LOCAL)
        algorithm.set_fault_state(chiplet_fault_pattern(system4, 0, down_faulty=[1]))
        routes.route(packet, src, Port.LOCAL)
        assert routes.invalidations == 0
        assert routes.hits == 1


class TestSimulationBitIdentity:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_compiled_simulation_is_bit_identical(self, system4, name):
        config = SimulationConfig(
            warmup_cycles=60, measure_cycles=240, drain_cycles=3_000,
            watchdog_cycles=2_000, seed=9,
        )
        state = chiplet_fault_pattern(system4, 0, down_faulty=[2], up_faulty=[1])
        reports = []
        for routes in (None, "auto"):
            algorithm = _make(name, system4, state)
            traffic = make_traffic("uniform", system4, seed=9, rate=0.008)
            reports.append(
                Simulator(system4, algorithm, traffic, config, routes=routes).run()
            )
        live, compiled = reports
        assert compiled.cycles == live.cycles
        for attribute in (
            "average_latency", "delivered_ratio", "packets_created",
            "packets_delivered", "packets_dropped_unroutable", "flit_hops",
        ):
            assert getattr(compiled.stats, attribute) == getattr(live.stats, attribute)
        assert compiled.stats.hops.average == live.stats.hops.average
        assert compiled.stats.vc_utilization_report() == live.stats.vc_utilization_report()
        assert compiled.stats.vl_load_report() == live.stats.vl_load_report()

    def test_simulator_rejects_foreign_routes(self, system4, fast_config):
        table_owner = make_algorithm("mtr", system4)
        routes = CompiledRoutes(table_owner)
        other = make_algorithm("mtr", system4)
        traffic = make_traffic("uniform", system4, seed=1, rate=0.004)
        with pytest.raises(ValueError):
            Simulator(system4, other, traffic, fast_config, routes=routes)

    def test_uncompilable_algorithm_falls_back_to_live(self, system4, fast_config):
        class Uncompilable(NaiveRouting):
            compilable = False

        algorithm = Uncompilable(system4)
        assert compile_routes(algorithm) is None
        with pytest.raises(RoutingError):
            CompiledRoutes(algorithm)
        traffic = make_traffic("uniform", system4, seed=1, rate=0.002)
        simulator = Simulator(system4, algorithm, traffic, fast_config)
        assert simulator.routes is None  # auto-detection declined politely


class TestReachabilityTables:
    @pytest.mark.parametrize("name", ("deft", "mtr", "rc"))
    def test_decomposed_matches_pairwise(self, system4, name):
        algorithm = make_algorithm(name, system4)
        routes = CompiledRoutes(algorithm)
        rng = random.Random(17)
        for k in (1, 3, 6):
            for _ in range(4):
                state = random_fault_state(system4, k, rng)
                assert reachability_of_state(
                    system4, algorithm, state, routes=routes
                ) == reachability_of_state(system4, algorithm, state)

    def test_pattern_rows_shared_across_states(self, system4):
        algorithm = make_algorithm("deft", system4)
        routes = CompiledRoutes(algorithm)
        state = chiplet_fault_pattern(system4, 0, down_faulty=[1])
        routes.core_reachability(state)
        rows = len(routes._senders) + len(routes._receivers)
        routes.core_reachability(state)  # identical patterns: no new rows
        assert len(routes._senders) + len(routes._receivers) == rows

    def test_rows_survive_fault_invalidation(self, system4):
        algorithm = make_algorithm("mtr", system4)
        routes = CompiledRoutes(algorithm)
        routes.core_reachability(chiplet_fault_pattern(system4, 0, down_faulty=[1]))
        rows = len(routes._senders)
        algorithm.set_fault_state(chiplet_fault_pattern(system4, 1, up_faulty=[2]))
        packet = Packet(0, system4.cores[0], system4.cores[-1], size=8, created_cycle=0)
        algorithm.prepare_packet(packet)
        routes.route(packet, packet.src, Port.LOCAL)  # triggers route-row rebind
        assert len(routes._senders) == rows  # reachability rows kept

    def test_works_on_larger_grids(self):
        system = chiplet_grid(3, 2)
        algorithm = make_algorithm("deft-dis", system)
        routes = CompiledRoutes(algorithm)
        rng = random.Random(3)
        for _ in range(3):
            state = random_fault_state(system, 5, rng)
            assert reachability_of_state(
                system, algorithm, state, routes=routes
            ) == reachability_of_state(system, algorithm, state)


class TestCdgThroughTables:
    @pytest.mark.parametrize("name", ("deft", "mtr", "rc"))
    def test_cdg_identical_with_and_without_tables(self, system4, name):
        state = chiplet_fault_pattern(system4, 0, down_faulty=[0])
        live_report = build_cdg(system4, _make(name, system4, state), routes=None)
        compiled_report = build_cdg(system4, _make(name, system4, state))
        assert set(compiled_report.graph.nodes) == set(live_report.graph.nodes)
        assert set(compiled_report.graph.edges) == set(live_report.graph.edges)
        assert compiled_report.pairs_walked == live_report.pairs_walked
        assert compiled_report.unroutable_pairs == live_report.unroutable_pairs
        assert compiled_report.is_acyclic  # the protected algorithms stay clean

    def test_naive_stays_cyclic_through_tables(self, system4):
        report = build_cdg(system4, NaiveRouting(system4))
        assert not report.is_acyclic

    def test_cdg_rejects_foreign_routes(self, system4):
        table_owner = make_algorithm("mtr", system4)
        other = make_algorithm("mtr", system4)
        with pytest.raises(ValueError):
            build_cdg(system4, other, routes=CompiledRoutes(table_owner))


def test_every_registered_algorithm_declares_compilable(system4):
    """The registry's algorithms all opt into compilation (ISSUE tentpole)."""
    for name in available_algorithms():
        assert make_algorithm(name, system4).compilable


def test_compilation_is_strictly_opt_in():
    """The abstract base must not silently compile unaudited algorithms."""
    from repro.routing.base import RoutingAlgorithm

    assert RoutingAlgorithm.compilable is False
