"""Telemetry layer: metrics core, JSONL events, manifest, fleet status.

The metrics/events layers are pure plumbing, so the tests pin exact
semantics (counter monotonicity, histogram percentile math, disabled-
mode no-ops, event schema round-trips). ``deft status`` is tested two
ways: against a *synthetic* spool layout (hand-built claims, an expired
lease, a dead worker) where every number is known, and end-to-end over
a real 2-worker spool campaign to prove the snapshot is reconstructable
without the enqueuing process.
"""

import json
import math
import time
import urllib.request

import pytest

from repro.config import SimulationConfig
from repro.distributed import Spool, SpoolBackend, run_worker
from repro.montecarlo import montecarlo_jobs
from repro.runner import (
    Campaign,
    CampaignRunner,
    Job,
    ResultCache,
    SerialBackend,
    SystemRef,
    TrafficSpec,
)
from repro.runner.runner import CampaignReport
from repro.telemetry.events import (
    EVENT_TYPES,
    NULL_EVENTS,
    EventWriter,
    read_events,
)
from repro.telemetry.manifest import (
    event_writer,
    load_campaign_manifests,
    parse_shard,
    read_all_events,
    write_campaign_manifest,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
)
from repro.telemetry.status import fleet_status, render_prom, render_status

TINY = SimulationConfig(
    warmup_cycles=30, measure_cycles=100, drain_cycles=1_200, watchdog_cycles=2_000
)


def reachability_jobs(samples: int = 4, algorithm: str = "rc") -> list[Job]:
    return montecarlo_jobs(
        SystemRef.baseline4(), algorithm, 2, samples, seed=0, metric="reachability"
    )


# ---------------------------------------------------------------------------
# metrics core
# ---------------------------------------------------------------------------


class TestMetricsCore:
    def test_counter_semantics(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_semantics(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value == 5.0

    def test_histogram_buckets_and_percentiles(self):
        hist = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 0.5, 0.5, 0.5, 5.0, 5.0, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 10
        assert hist.sum == pytest.approx(67.1)
        assert hist.bucket_counts == [2, 4, 3, 1]
        # p50: rank 5 of 10 lands in the (0.1, 1.0] bucket.
        assert 0.1 <= hist.quantile(0.5) <= 1.0
        # p95: rank 9.5 lands in the (1.0, 10.0] bucket.
        assert 1.0 <= hist.p95 <= 10.0
        # Overflow values are reported as the largest finite bound.
        assert hist.quantile(1.0) == 10.0
        assert math.isnan(Histogram("empty").p50)

    def test_span_times_into_histogram(self):
        registry = MetricsRegistry()
        with registry.span("span_seconds") as span:
            time.sleep(0.01)
        hist = registry.histogram("span_seconds")
        assert hist.count == 1
        assert span.elapsed_s >= 0.01
        assert hist.sum == pytest.approx(span.elapsed_s)

    def test_percentile_exact(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)
        assert math.isnan(percentile([], 0.5))

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc(100)
        assert counter.value == 0.0
        registry.histogram("h").observe(1.0)
        with registry.span("s"):
            pass
        # Nothing was registered; rendering is empty.
        assert len(registry) == 0
        assert registry.render_prom() == ""
        assert registry.snapshot() == {}

    def test_name_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_prom_rendering(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", help="jobs").inc(3)
        registry.gauge("depth").set(1.5)
        hist = registry.histogram("lat_seconds", buckets=(0.5, 1.0))
        hist.observe(0.2)
        hist.observe(2.0)
        text = registry.render_prom()
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text
        assert "depth 1.5" in text
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h")  # empty: percentiles would be NaN
        json.dumps(registry.snapshot())  # must not raise


# ---------------------------------------------------------------------------
# events + manifest
# ---------------------------------------------------------------------------


class TestEvents:
    def test_roundtrip_schema(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with EventWriter(path, "worker-1") as events:
            events.emit("job_claimed", key="abc", worker="worker-1", attempts=1)
            events.emit(
                "job_phase",
                key="abc", worker="worker-1",
                setup_s=0.1, compile_s=0.2, simulate_s=0.3, cache_s=0.0,
            )
            events.emit(
                "job_finished",
                key="abc", worker="worker-1", ok=True, cached=False,
                duration_s=0.6, attempts=1,
            )
        records = list(read_events(path))
        assert [r["event"] for r in records] == [
            "job_claimed", "job_phase", "job_finished",
        ]
        for record in records:
            assert record["source"] == "worker-1"
            assert isinstance(record["ts"], float)
            assert record["event"] in EVENT_TYPES
        assert records[1]["simulate_s"] == 0.3
        assert records[2]["ok"] is True

    def test_unknown_event_and_reserved_fields_rejected(self, tmp_path):
        events = EventWriter(tmp_path / "w.jsonl", "w")
        with pytest.raises(ValueError):
            events.emit("job_exploded")
        with pytest.raises(ValueError):
            events.emit("requeue", source="spoofed")
        # Nothing reached disk, and the file was never even created.
        assert not (tmp_path / "w.jsonl").exists()

    def test_reader_skips_torn_lines(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with EventWriter(path, "w") as events:
            events.emit("requeue", key="k1", attempts=1, terminal=False)
        with open(path, "a") as handle:
            handle.write('{"event": "job_finished", "key": "k2"')  # torn tail
        with open(path, "a") as handle:
            handle.write("\n")
        records = list(read_events(path))
        assert len(records) == 1 and records[0]["key"] == "k1"

    def test_missing_file_and_null_writer(self, tmp_path):
        assert list(read_events(tmp_path / "absent.jsonl")) == []
        NULL_EVENTS.emit("requeue", key="k")  # must be a silent no-op

    def test_writer_disabled_with_telemetry(self, tmp_path, monkeypatch):
        from repro.telemetry import metrics

        monkeypatch.setattr(metrics, "_PROCESS_REGISTRY", None)
        monkeypatch.setenv(metrics.TELEMETRY_ENV, "0")
        writer = event_writer(tmp_path, "w")
        writer.emit("requeue", key="k", attempts=1, terminal=False)
        assert list(read_all_events(tmp_path)) == []


class TestManifest:
    def test_write_and_load(self, tmp_path):
        jobs = reachability_jobs(3)
        campaign = Campaign(name="mc#shard-2-of-4", jobs=tuple(jobs))
        path = write_campaign_manifest(tmp_path, campaign, source="enq-1")
        assert path.is_file()
        manifests = load_campaign_manifests(tmp_path)
        assert len(manifests) == 1
        manifest = manifests[0]
        assert manifest["campaign"] == "mc#shard-2-of-4"
        assert manifest["total"] == 3
        assert manifest["shard"] == {"base": "mc", "index": 2, "count": 4}
        assert sorted(manifest["keys"]) == sorted(j.key() for j in jobs)
        # Re-announcing the identical campaign overwrites, not duplicates.
        write_campaign_manifest(tmp_path, campaign, source="enq-1")
        assert len(load_campaign_manifests(tmp_path)) == 1

    def test_parse_shard(self):
        assert parse_shard("plain-name") is None
        assert parse_shard("x#shard-1-of-8") == {
            "base": "x", "index": 1, "count": 8,
        }


# ---------------------------------------------------------------------------
# fleet status
# ---------------------------------------------------------------------------


class TestFleetStatus:
    def test_synthetic_spool_with_expired_lease(self, tmp_path):
        """Every number of the dashboard pinned against a hand-built
        layout: 4-job campaign, 1 done, 1 failed, 1 claimed with an
        expired lease, 1 pending; one live and one dead worker."""
        spool_dir = tmp_path / "spool"
        cache_dir = tmp_path / "cache"
        jobs = reachability_jobs(4)
        cache = ResultCache(cache_dir)
        spool = Spool(spool_dir, lease_s=30.0).ensure()
        campaign = Campaign(name="synthetic", jobs=tuple(jobs))
        write_campaign_manifest(spool_dir, campaign, source="test")
        spool.enqueue(jobs)

        # Job 0: done (executed straight into the cache, claim released).
        done_claim = spool.claim("alive-worker")
        result = SerialBackend().run([done_claim.job])[0]
        cache.put(done_claim.job, result)
        spool.complete(done_claim)
        # Job 1: terminal failure.
        failed_claim = spool.claim("alive-worker")
        from repro.runner.result import JobResult

        spool.record_failure(
            failed_claim.key,
            JobResult(job_key=failed_claim.key, ok=False, error="boom"),
            attempts=3,
        )
        spool.complete(failed_claim)
        # Job 2: claimed by a worker that died — lease already expired.
        now = time.time()
        stale_claim = spool.claim("dead-worker", now=now - 100.0)
        assert stale_claim.deadline < now
        # Job 3 stays pending.

        spool.write_worker_stats("alive-worker", {
            "worker": "alive-worker", "updated_at": now - 1.0,
            "jobs_done": 1, "jobs_failed": 1,
            "session": {"system.hit": 3, "system.miss": 1},
        })
        spool.write_worker_stats("dead-worker", {
            "worker": "dead-worker", "updated_at": now - 500.0,
            "jobs_done": 0, "jobs_failed": 0, "session": {},
        })
        with event_writer(spool_dir, "alive-worker") as events:
            events.emit("job_finished", key=done_claim.key, worker="alive-worker",
                        ok=True, cached=False, duration_s=0.25, attempts=1)
            events.emit("job_phase", key=done_claim.key, worker="alive-worker",
                        setup_s=0.05, compile_s=0.1, simulate_s=0.1, cache_s=0.0)

        status = fleet_status(spool_dir, cache_dir=cache_dir, now=now)
        assert status["spool"]["pending"] == 1
        assert status["spool"]["claimed"] == 1
        assert status["spool"]["failed"] == 1
        assert status["leases"]["stale"] == 1
        assert status["leases"]["stale_keys"] == [stale_claim.key]
        assert status["leases"]["active"] == 0
        assert status["workers"]["alive"] == 1
        assert status["workers"]["dead"] == 1
        assert status["session"]["system"]["hit_ratio"] == pytest.approx(0.75)
        (campaign_status,) = status["campaigns"]
        assert campaign_status["total"] == 4
        assert campaign_status["done"] == 1
        assert campaign_status["failed"] == 1
        assert campaign_status["running"] == 1
        assert campaign_status["progress"] == pytest.approx(0.5)
        assert status["latency"]["count"] == 1
        assert status["latency"]["p50_s"] == pytest.approx(0.25)
        assert status["phases"]["compile_s"] == pytest.approx(0.1)
        assert status["cache"]["entries"] == 1

        # Both renderers accept the snapshot; JSON stays strict.
        text = render_status(status)
        assert "1 stale" in text and "1/4 done" in text
        prom = render_prom(status)
        assert "deft_leases_stale 1" in prom
        json.dumps(status)

    def test_status_cli_on_live_campaign(self, tmp_path, capsys):
        """The acceptance path: a real 2-worker spool campaign, then
        ``deft status --json`` reconstructs progress, liveness and
        latency percentiles with the enqueuer long gone."""
        from repro.cli import main

        spool_dir = tmp_path / "spool"
        cache_dir = tmp_path / "cache"
        jobs = reachability_jobs(6)
        cache = ResultCache(cache_dir)
        with SpoolBackend(
            cache, spool_dir=spool_dir, workers=2, stall_timeout_s=120.0
        ) as backend:
            report = CampaignRunner(backend=backend, cache=cache).run(
                Campaign(name="live", jobs=tuple(jobs))
            )
        assert not report.errors

        code = main([
            "status", str(spool_dir), "--cache-dir", str(cache_dir), "--json",
        ])
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        assert status["leases"]["stale"] == 0
        assert status["spool"]["pending"] == 0
        (campaign_status,) = status["campaigns"]
        assert campaign_status["done"] == campaign_status["total"] == 6
        assert status["latency"]["count"] >= 6
        assert status["latency"]["p50_s"] > 0
        assert status["latency"]["p95_s"] >= status["latency"]["p50_s"]
        assert status["throughput"]["finished_total"] >= 6
        # Worker snapshots were published (heartbeat/per-job publishing).
        assert status["workers"]["alive"] + status["workers"]["dead"] == 2

        code = main([
            "status", str(spool_dir), "--cache-dir", str(cache_dir), "--prom",
        ])
        assert code == 0
        prom = capsys.readouterr().out
        assert "deft_spool_pending_jobs 0" in prom
        assert "deft_campaign_done_jobs" in prom

    def test_status_cli_missing_spool(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["status", str(tmp_path / "nope")])
        assert excinfo.value.code == 2


# ---------------------------------------------------------------------------
# threading through the stack
# ---------------------------------------------------------------------------


class TestThreading:
    def test_serial_backend_emits_events(self, tmp_path):
        jobs = reachability_jobs(2)
        writer = EventWriter(tmp_path / "serial.jsonl", "serial")
        backend = SerialBackend(events=writer)
        results = backend.run(jobs)
        writer.close()
        assert all(result.ok for result in results)
        records = list(read_events(tmp_path / "serial.jsonl"))
        finished = [r for r in records if r["event"] == "job_finished"]
        phased = [r for r in records if r["event"] == "job_phase"]
        assert len(finished) == len(phased) == 2
        assert {r["key"] for r in finished} == {job.key() for job in jobs}
        assert all(r["duration_s"] > 0 for r in finished)
        assert all(r["simulate_s"] >= 0 for r in phased)

    def test_worker_emits_lifecycle_events_and_heartbeats(self, tmp_path):
        """A real worker run leaves claim/phase/finish events and, with a
        short lease, heartbeat events + mid-run stats publishes behind."""
        spool_dir = tmp_path / "spool"
        cache = ResultCache(tmp_path / "cache")
        spool = Spool(spool_dir, lease_s=0.2).ensure()
        # Long enough (~0.5s of cycles) that the 0.05s heartbeat interval
        # deterministically fires several times mid-job.
        config = SimulationConfig(
            warmup_cycles=100, measure_cycles=5_000,
            drain_cycles=2_000, watchdog_cycles=20_000,
        )
        job = Job.make(
            SystemRef.baseline4(), "rc",
            TrafficSpec.make("uniform", rate=0.003), config, seed=1,
        )
        spool.enqueue([job])
        stats = run_worker(
            spool_dir, cache, worker_id="w-events", lease_s=0.2, max_jobs=1,
        )
        assert stats["jobs_done"] == 1
        records = list(read_all_events(spool_dir))
        kinds = [record["event"] for record in records]
        assert "job_claimed" in kinds
        assert "job_phase" in kinds
        assert "job_finished" in kinds
        finished = [r for r in records if r["event"] == "job_finished"][0]
        assert finished["key"] == job.key()
        assert finished["worker"] == "w-events"
        assert finished["ok"] is True and finished["cached"] is False
        phase = [r for r in records if r["event"] == "job_phase"][0]
        assert phase["simulate_s"] > 0
        # The lease_s=0.2 heartbeat interval is 0.05s; the job above runs
        # an order of magnitude longer, so at least one beat fires — each
        # of which both emits an event and republishes workers/<id>.json.
        beats = [r for r in records if r["event"] == "worker_heartbeat"]
        assert beats, "expected mid-job heartbeat events"
        assert spool.worker_stats()["w-events"]["jobs_done"] == 1

    def test_spool_emits_expiry_and_requeue_events(self, tmp_path):
        jobs = reachability_jobs(1)
        spool = Spool(tmp_path, lease_s=5.0, max_attempts=2).ensure()
        spool.attach_events("reaper-test")
        spool.enqueue(jobs)
        claim = spool.claim("doomed")
        assert spool.requeue_expired(now=claim.deadline + 1.0) == 1
        spool.events.close()
        records = list(read_all_events(tmp_path))
        expired = [r for r in records if r["event"] == "lease_expired"]
        requeued = [r for r in records if r["event"] == "requeue"]
        assert len(expired) == 1 and expired[0]["worker"] == "doomed"
        assert len(requeued) == 1 and requeued[0]["terminal"] is False

    def test_spool_backend_writes_manifest_via_runner(self, tmp_path):
        spool_dir = tmp_path / "spool"
        cache = ResultCache(tmp_path / "cache")
        jobs = reachability_jobs(2)
        with SpoolBackend(
            cache, spool_dir=spool_dir, workers=1, stall_timeout_s=120.0
        ) as backend:
            runner = CampaignRunner(backend=backend, cache=cache)
            runner.run(Campaign(name="manifested", jobs=tuple(jobs)))
        (manifest,) = load_campaign_manifests(spool_dir)
        assert manifest["campaign"] == "manifested"
        assert manifest["total"] == 2
        started = [
            r for r in read_all_events(spool_dir)
            if r["event"] == "campaign_started"
        ]
        assert len(started) == 1 and started[0]["total"] == 2

    def test_execute_metrics_recorded(self):
        registry = get_registry()
        if not registry.enabled:
            pytest.skip("telemetry disabled in this environment")
        before = registry.counter("deft_jobs_executed_total").value
        SerialBackend().run(reachability_jobs(2))
        after = registry.counter("deft_jobs_executed_total").value
        assert after == before + 2


# ---------------------------------------------------------------------------
# satellites: report percentiles, cache stats json, metrics endpoint
# ---------------------------------------------------------------------------


class TestSatellites:
    def test_campaign_summary_includes_percentiles(self):
        jobs = reachability_jobs(3)
        report = CampaignRunner(backend=SerialBackend()).run(jobs)
        summary = report.summary()
        assert "job p50" in summary
        assert "p95" in summary
        assert "total job time" in summary
        durations = report.job_durations()
        assert len(durations) == 3 and all(d > 0 for d in durations)

    def test_empty_report_summary_has_no_percentiles(self):
        report = CampaignReport(name="empty", jobs=(), results=[])
        assert "job p50" not in report.summary()

    def test_cache_stats_json_cli(self, tmp_path, capsys):
        from repro.cli import main

        cache = ResultCache(tmp_path)
        job = reachability_jobs(1)[0]
        cache.put(job, SerialBackend().run([job])[0])
        code = main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["root"] == str(tmp_path)
        assert payload["total_bytes"] > 0

    def test_cache_has_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = reachability_jobs(1)[0]
        assert not cache.has_key(job.key())
        cache.put(job, SerialBackend().run([job])[0])
        assert cache.has_key(job.key())

    def test_metrics_http_endpoint(self):
        from repro.telemetry.httpd import serve_metrics

        registry = MetricsRegistry()
        registry.counter("deft_test_total", help="test").inc(5)
        server = serve_metrics(0, registry=registry)
        try:
            url = f"http://127.0.0.1:{server.server_port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                body = response.read().decode()
            assert "deft_test_total 5" in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.server_port}/else", timeout=5
                )
        finally:
            server.shutdown()


# ---------------------------------------------------------------------------
# segment rotation, incremental tailing, health probe, resource gauges
# ---------------------------------------------------------------------------


class TestSegmentRotation:
    def _fill(self, path, count, max_segment_bytes=400):
        with EventWriter(path, "w", max_segment_bytes=max_segment_bytes) as events:
            for index in range(count):
                events.emit("requeue", key=f"k{index:04d}", attempts=1,
                            terminal=False)

    def test_writer_rotates_and_reader_merges(self, tmp_path):
        from repro.telemetry.events import rotated_path, segment_paths

        path = tmp_path / "w.jsonl"
        self._fill(path, 40)
        segments = segment_paths(path)
        assert len(segments) > 1
        # rotated segments come oldest-first; the head (if the last emit
        # didn't itself trigger a rotation) is always last
        assert segments[0] == rotated_path(path, 1)
        for sealed in segments:
            if sealed != path:
                assert sealed.stat().st_size <= 400 + 200  # one record slack
        records = list(read_events(path))
        assert [r["key"] for r in records] == [f"k{i:04d}" for i in range(40)]

    def test_zero_disables_rotation(self, tmp_path):
        from repro.telemetry.events import segment_paths

        path = tmp_path / "w.jsonl"
        with EventWriter(path, "w", max_segment_bytes=0) as events:
            for index in range(50):
                events.emit("requeue", key=f"k{index}", attempts=1,
                            terminal=False)
        assert segment_paths(path) == [path]

    def test_env_override(self, tmp_path, monkeypatch):
        from repro.telemetry.events import SEGMENT_BYTES_ENV, default_segment_bytes

        monkeypatch.setenv(SEGMENT_BYTES_ENV, "1234")
        assert default_segment_bytes() == 1234
        monkeypatch.setenv(SEGMENT_BYTES_ENV, "junk")
        assert default_segment_bytes() == 8 * 1024 * 1024

    def test_tailer_survives_live_rotation(self, tmp_path):
        from repro.telemetry.events import EventTailer

        path = tmp_path / "w.jsonl"
        tailer = EventTailer(path)
        assert tailer.poll() == []
        seen = []
        with EventWriter(path, "w", max_segment_bytes=300) as events:
            for index in range(30):
                events.emit("requeue", key=f"k{index:04d}", attempts=1,
                            terminal=False)
                if index % 7 == 0:
                    seen.extend(tailer.poll())
        seen.extend(tailer.poll())
        assert [r["key"] for r in seen] == [f"k{i:04d}" for i in range(30)]
        # no duplicates on a quiet re-poll
        assert tailer.poll() == []

    def test_tailer_tolerates_torn_tail(self, tmp_path):
        from repro.telemetry.events import EventTailer

        path = tmp_path / "w.jsonl"
        with EventWriter(path, "w") as events:
            events.emit("requeue", key="whole", attempts=1, terminal=False)
        with open(path, "a") as handle:
            handle.write('{"event": "requeue", "key": "to')  # torn, no newline
        tailer = EventTailer(path)
        assert [r["key"] for r in tailer.poll()] == ["whole"]
        with open(path, "a") as handle:
            handle.write('rn"}\n')
        assert [r["key"] for r in tailer.poll()] == ["torn"]

    def test_tailer_replay_false_skips_history(self, tmp_path):
        from repro.telemetry.events import EventTailer

        path = tmp_path / "w.jsonl"
        with EventWriter(path, "w", max_segment_bytes=300) as events:
            for index in range(10):
                events.emit("requeue", key=f"old{index}", attempts=1,
                            terminal=False)
            tailer = EventTailer(path, replay=False)
            assert tailer.poll() == []
            events.emit("requeue", key="new", attempts=1, terminal=False)
            assert [r["key"] for r in tailer.poll()] == ["new"]

    def test_read_all_events_spans_sources_and_segments(self, tmp_path):
        from repro.telemetry.manifest import ensure_manifest, event_streams

        ensure_manifest(tmp_path)
        for source in ("w1", "w2"):
            with event_writer(tmp_path, source) as events:
                events.max_segment_bytes = 300
                for index in range(12):
                    events.emit("requeue", key=f"{source}-{index:02d}",
                                attempts=1, terminal=False)
        streams = event_streams(tmp_path)
        assert len(streams) == 2  # one logical stream per source
        records = list(read_all_events(tmp_path))
        assert len(records) == 24
        keys = {r["key"] for r in records}
        assert keys == {f"w{n}-{i:02d}" for n in (1, 2) for i in range(12)}


class TestHealthProbe:
    def _status(self, *, stale=0, stale_keys=(), failed=0, pending=0,
                claimed=0, details=(), alive=0, dead=0):
        return {
            "leases": {"stale": stale, "stale_keys": list(stale_keys)},
            "spool": {"failed": failed, "pending": pending, "claimed": claimed},
            "workers": {"details": list(details), "alive": alive, "dead": dead},
        }

    def test_healthy_and_idle_spools_pass(self):
        from repro.telemetry.status import health_problems

        assert health_problems(self._status()) == []
        # workers seen, none alive, but no outstanding work: idle, not dead
        assert health_problems(
            self._status(details=[{"worker": "w"}], dead=1)
        ) == []

    def test_each_condition_reports(self):
        from repro.telemetry.status import health_problems

        stale = health_problems(
            self._status(stale=2, stale_keys=["a" * 40, "b" * 40])
        )
        assert len(stale) == 1 and "2 stale lease(s)" in stale[0]
        assert "a" * 12 in stale[0]

        failed = health_problems(self._status(failed=3))
        assert failed == ["3 terminal job failure(s) in failed/"]

        dead = health_problems(
            self._status(details=[{"worker": "w"}], dead=1, pending=5)
        )
        assert len(dead) == 1 and "fleet dead" in dead[0]

    def test_conditions_stack(self):
        from repro.telemetry.status import health_problems

        problems = health_problems(
            self._status(stale=1, stale_keys=["k"], failed=1,
                         details=[{"worker": "w"}], dead=1, claimed=1)
        )
        assert len(problems) == 3

    def test_status_check_cli(self, tmp_path, capsys):
        from repro.cli import main

        spool_dir = tmp_path / "spool"
        spool = Spool(spool_dir, lease_s=30.0).ensure()
        jobs = reachability_jobs(2)
        spool.enqueue(jobs)
        assert main(["status", str(spool_dir), "--check"]) == 0
        capsys.readouterr()

        # expire a lease -> unhealthy exit 1 with a reason on stderr
        spool.claim("dead-worker", now=time.time() - 100.0)
        assert main(["status", str(spool_dir), "--check"]) == 1
        captured = capsys.readouterr()
        assert "unhealthy: " in captured.err and "stale lease" in captured.err

        with pytest.raises(SystemExit):
            main(["status", str(spool_dir), "--check", "--watch"])


class TestWorkerResourceGauges:
    def test_proc_resources_on_linux(self):
        from repro.distributed.worker import _proc_resources

        resources = _proc_resources()
        assert resources.get("rss_bytes", 0) > 0
        assert resources.get("open_fds", 0) > 0

    def test_gauges_flow_through_status_and_prom(self, tmp_path):
        spool = Spool(tmp_path / "spool", lease_s=30.0).ensure()
        now = time.time()
        spool.write_worker_stats("w1", {
            "worker": "w1", "updated_at": now - 1.0,
            "jobs_done": 4, "jobs_failed": 0, "session": {},
            "rss_bytes": 48 * 1024 * 1024, "open_fds": 17,
        })
        status = fleet_status(tmp_path / "spool", now=now)
        (detail,) = status["workers"]["details"]
        assert detail["rss_bytes"] == 48 * 1024 * 1024
        assert detail["open_fds"] == 17
        text = render_status(status)
        assert "rss 48 MiB" in text and "17 fds" in text
        prom = render_prom(status)
        assert 'deft_worker_rss_bytes{worker="w1"} 50331648' in prom
        assert 'deft_worker_open_fds{worker="w1"} 17' in prom
        assert 'deft_worker_jobs_done{worker="w1"} 4' in prom

    def test_worker_publishes_gauges(self, tmp_path):
        """End-to-end: a real drain leaves rss/fd gauges in the stats file."""
        jobs = reachability_jobs(2)
        spool = Spool(tmp_path / "spool", lease_s=10.0).ensure()
        spool.enqueue(jobs)
        run_worker(tmp_path / "spool", ResultCache(tmp_path / "cache"),
                   worker_id="gauge-w", idle_timeout_s=1.0, lease_s=10.0)
        stats = json.loads(
            (tmp_path / "spool" / "workers" / "gauge-w.json").read_text()
        )
        assert stats["rss_bytes"] > 0
        assert stats["open_fds"] > 0
