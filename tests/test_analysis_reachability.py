"""Exact reachability analysis vs brute force and Monte-Carlo (Fig. 7)."""

import pytest

from repro.analysis.reachability import (
    average_reachability,
    brute_force_reachability,
    monte_carlo_reachability,
    reachability_curve,
    reachability_of_state,
    worst_reachability,
)
from repro.errors import FaultModelError
from repro.fault.model import chiplet_fault_pattern, fault_free
from repro.routing.deft import DeftRouting
from repro.routing.mtr import MtrRouting
from repro.routing.rc import RcRouting


@pytest.mark.slow
class TestExactMatchesBruteForce:
    @pytest.mark.parametrize("factory", [DeftRouting, MtrRouting, RcRouting])
    @pytest.mark.parametrize("k", [1, 2])
    def test_average_and_worst(self, system4, factory, k):
        algo = factory(system4)
        avg = average_reachability(system4, algo, k)
        wrst = worst_reachability(system4, algo, k)
        brute_avg, brute_wrst = brute_force_reachability(system4, algo, k)
        assert avg == pytest.approx(brute_avg, abs=1e-12)
        assert wrst == pytest.approx(brute_wrst, abs=1e-12)

    def test_monte_carlo_brackets_exact(self, system4):
        algo = RcRouting(system4)
        exact = average_reachability(system4, algo, 4)
        mc_avg, mc_min = monte_carlo_reachability(system4, algo, 4, samples=150, seed=2)
        assert abs(mc_avg - exact) < 0.03
        assert mc_min >= worst_reachability(system4, algo, 4) - 1e-12


class TestPaperShape:
    def test_deft_always_full(self, system4):
        curve = reachability_curve(system4, DeftRouting(system4))
        assert all(v == 1.0 for v in curve.average)
        assert all(v == 1.0 for v in curve.worst)

    def test_mtr_profile(self, system4):
        curve = reachability_curve(system4, MtrRouting(system4))
        assert curve.average[0] == 1.0 and curve.worst[0] == 1.0
        assert curve.worst[1] < 1.0
        assert all(a >= b for a, b in zip(curve.average, curve.average[1:]))

    def test_rc_profile(self, system4):
        curve = reachability_curve(system4, RcRouting(system4))
        assert curve.average[0] < 1.0
        # RC's average declines roughly linearly with fault count.
        drops = [
            curve.average[i] - curve.average[i + 1]
            for i in range(len(curve.average) - 1)
        ]
        assert all(d > 0 for d in drops)

    def test_rc_single_fault_value(self, system4):
        """One faulty down VL cuts 4 bound senders from 48 remote cores:
        4*48 of 64*63 ordered pairs."""
        algo = RcRouting(system4)
        state = chiplet_fault_pattern(system4, 0, down_faulty=[0])
        value = reachability_of_state(system4, algo, state)
        expected = 1 - (4 * 48) / (64 * 63)
        assert value == pytest.approx(expected)

    def test_six_chiplet_ordering(self, system6):
        mtr = reachability_curve(system6, MtrRouting(system6), (1, 2, 3))
        rc = reachability_curve(system6, RcRouting(system6), (1, 2, 3))
        assert mtr.average[0] == 1.0
        assert rc.average[0] < 1.0
        assert all(m >= r for m, r in zip(mtr.average, rc.average))


class TestReachabilityOfState:
    def test_fault_free_is_full(self, system4):
        for factory in (DeftRouting, MtrRouting, RcRouting):
            algo = factory(system4)
            assert reachability_of_state(system4, algo, fault_free(system4)) == 1.0

    def test_restores_original_fault_state(self, system4):
        algo = MtrRouting(system4)
        original = algo.fault_state
        state = chiplet_fault_pattern(system4, 1, down_faulty=[0, 2])
        reachability_of_state(system4, algo, state)
        assert algo.fault_state is original


class TestErrors:
    def test_impossible_fault_count(self, system4):
        algo = DeftRouting(system4)
        with pytest.raises(FaultModelError):
            average_reachability(system4, algo, 99)

    def test_needs_two_chiplets(self, lone_chiplet):
        algo = DeftRouting(lone_chiplet)
        with pytest.raises(FaultModelError):
            average_reachability(lone_chiplet, algo, 1)
