"""ORION-style area/power model (Table I)."""

import pytest

from repro.power.model import (
    RouterParams,
    TECHNOLOGY_45NM,
    estimate_deft_router,
    estimate_mtr_router,
    estimate_rc_boundary_router,
    estimate_rc_nonboundary_router,
    table1,
)

PAPER = {
    "MTR": (45878, 11.644),
    "RC non-boundary": (46663, 11.760),
    "RC boundary": (51984, 12.841),
    "DeFT": (46651, 11.693),
}


class TestCalibration:
    def test_absolute_values_match_paper_within_one_percent(self):
        for name, estimate in table1().items():
            area, power = PAPER[name]
            assert estimate.area_um2 == pytest.approx(area, rel=0.01)
            assert estimate.power_mw == pytest.approx(power, rel=0.01)

    def test_normalized_values_match_paper(self):
        estimates = table1()
        mtr = estimates["MTR"]
        norm_area, norm_power = estimates["DeFT"].normalized_to(mtr)
        assert norm_area == pytest.approx(46651 / 45878, abs=0.005)
        assert norm_power == pytest.approx(11.693 / 11.644, abs=0.005)
        rcb_area, rcb_power = estimates["RC boundary"].normalized_to(mtr)
        assert rcb_area == pytest.approx(1.133, abs=0.005)
        assert rcb_power == pytest.approx(1.102, abs=0.005)

    def test_breakdowns_sum_to_totals(self):
        for estimate in table1().values():
            assert sum(estimate.area_breakdown.values()) == pytest.approx(
                estimate.area_um2
            )
            assert sum(estimate.power_breakdown.values()) == pytest.approx(
                estimate.power_mw
            )


class TestStructureSizes:
    def test_paper_parameters(self):
        params = RouterParams()
        assert params.buffer_bits == 6 * 2 * 4 * 32
        assert params.rc_buffer_bits == 8 * 32
        # 15 scenarios x 2-bit VL address x two selection sides.
        assert params.lut_bits == 2 * 15 * 2

    def test_deft_overhead_components(self):
        mtr = estimate_mtr_router()
        deft = estimate_deft_router()
        assert set(deft.area_breakdown) - set(mtr.area_breakdown) == {
            "vl-lut", "vn-logic",
        }

    def test_rc_boundary_dominated_by_buffer(self):
        rcb = estimate_rc_boundary_router()
        assert rcb.area_breakdown["rc-buffer"] > rcb.area_breakdown["permission"]

    def test_rc_nonboundary_only_adds_requester(self):
        mtr = estimate_mtr_router()
        rcn = estimate_rc_nonboundary_router()
        delta = rcn.area_um2 - mtr.area_um2
        assert delta == pytest.approx(TECHNOLOGY_45NM.permission_requester_area)


class TestScaling:
    def test_more_vcs_cost_more(self):
        base = estimate_mtr_router(RouterParams(num_vcs=2))
        wide = estimate_mtr_router(RouterParams(num_vcs=4))
        assert wide.area_um2 > base.area_um2
        assert wide.power_mw > base.power_mw

    def test_deeper_buffers_cost_more(self):
        base = estimate_mtr_router(RouterParams(buffer_depth=4))
        deep = estimate_mtr_router(RouterParams(buffer_depth=8))
        assert deep.area_um2 > base.area_um2

    def test_bigger_packets_grow_rc_buffer_only(self):
        small = estimate_rc_boundary_router(RouterParams(packet_size=8))
        large = estimate_rc_boundary_router(RouterParams(packet_size=16))
        assert large.area_um2 > small.area_um2
        assert estimate_mtr_router(RouterParams(packet_size=16)).area_um2 == \
            estimate_mtr_router(RouterParams(packet_size=8)).area_um2

    def test_more_vls_grow_deft_lut(self):
        few = estimate_deft_router(RouterParams(vls_per_chiplet=4))
        many = estimate_deft_router(RouterParams(vls_per_chiplet=8))
        assert many.area_um2 > few.area_um2

    def test_deft_overhead_stays_small_even_with_more_vls(self):
        mtr = estimate_mtr_router()
        deft8 = estimate_deft_router(RouterParams(vls_per_chiplet=6))
        norm, _ = deft8.normalized_to(mtr)
        assert norm < 1.10
