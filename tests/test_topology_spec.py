"""ChipletSpec / SystemSpec validation and derived properties."""

import pytest

from repro.errors import TopologyError
from repro.topology.spec import (
    ChipletSpec,
    SystemSpec,
    iter_positions,
    rectangular_vl_border_positions,
)


def _chiplet(origin=(0, 0), width=4, height=4, vls=((1, 0), (2, 0), (1, 3), (2, 3))):
    return ChipletSpec(origin=origin, width=width, height=height, vl_positions=vls)


class TestChipletSpec:
    def test_valid(self):
        chiplet = _chiplet()
        assert chiplet.num_routers == 16
        assert chiplet.num_vls == 4

    def test_rejects_zero_dimensions(self):
        with pytest.raises(TopologyError):
            _chiplet(width=0)
        with pytest.raises(TopologyError):
            _chiplet(height=0)

    def test_rejects_vl_outside_mesh(self):
        with pytest.raises(TopologyError, match="outside"):
            _chiplet(vls=((4, 0),))

    def test_rejects_duplicate_vls(self):
        with pytest.raises(TopologyError, match="duplicate"):
            _chiplet(vls=((1, 0), (1, 0)))

    def test_requires_at_least_one_vl(self):
        with pytest.raises(TopologyError):
            _chiplet(vls=())

    def test_covers(self):
        chiplet = _chiplet(origin=(4, 4))
        assert chiplet.covers(4, 4)
        assert chiplet.covers(7, 7)
        assert not chiplet.covers(3, 4)
        assert not chiplet.covers(8, 4)


class TestSystemSpec:
    def test_valid_baseline_shape(self):
        spec = SystemSpec(
            chiplets=(_chiplet(), _chiplet(origin=(4, 0))),
            interposer_width=8,
            interposer_height=4,
        )
        assert spec.num_chiplets == 2
        assert spec.num_cores == 32
        assert spec.num_vertical_links == 8
        assert spec.num_directed_vls == 16

    def test_rejects_chiplet_out_of_bounds(self):
        with pytest.raises(TopologyError, match="exceeds"):
            SystemSpec(
                chiplets=(_chiplet(origin=(5, 0)),),
                interposer_width=8,
                interposer_height=4,
            )

    def test_rejects_negative_origin(self):
        with pytest.raises(TopologyError, match="negative"):
            SystemSpec(
                chiplets=(_chiplet(origin=(-1, 0)),),
                interposer_width=8,
                interposer_height=4,
            )

    def test_rejects_overlapping_chiplets(self):
        with pytest.raises(TopologyError, match="overlap"):
            SystemSpec(
                chiplets=(_chiplet(), _chiplet(origin=(2, 0))),
                interposer_width=8,
                interposer_height=4,
            )

    def test_rejects_dram_outside_interposer(self):
        with pytest.raises(TopologyError, match="DRAM"):
            SystemSpec(
                chiplets=(_chiplet(),),
                interposer_width=4,
                interposer_height=4,
                dram_positions=((4, 0),),
            )

    def test_rejects_duplicate_dram(self):
        with pytest.raises(TopologyError, match="duplicate"):
            SystemSpec(
                chiplets=(_chiplet(),),
                interposer_width=4,
                interposer_height=4,
                dram_positions=((0, 0), (0, 0)),
            )

    def test_needs_a_chiplet(self):
        with pytest.raises(TopologyError):
            SystemSpec(chiplets=(), interposer_width=4, interposer_height=4)

    def test_chiplet_at(self):
        spec = SystemSpec(
            chiplets=(_chiplet(), _chiplet(origin=(4, 0))),
            interposer_width=8,
            interposer_height=4,
        )
        assert spec.chiplet_at(0, 0) == 0
        assert spec.chiplet_at(5, 2) == 1
        assert spec.chiplet_at(0, 5) is None

    def test_describe_mentions_the_counts(self):
        spec = SystemSpec(
            chiplets=(_chiplet(),), interposer_width=4, interposer_height=4
        )
        text = spec.describe()
        assert "1 chiplets" in text
        assert "16 cores" in text
        assert "8 directed" in text


class TestBorderVlPlacement:
    def test_4x4_matches_paper_figure3(self):
        positions = rectangular_vl_border_positions(4, 4)
        assert set(positions) == {(1, 0), (2, 0), (1, 3), (2, 3)}

    def test_positions_are_on_the_border(self):
        for width, height in [(4, 4), (6, 4), (5, 3), (2, 2)]:
            for (x, y) in rectangular_vl_border_positions(width, height):
                assert y in (0, height - 1)

    def test_single_row_chiplet(self):
        positions = rectangular_vl_border_positions(4, 1)
        assert len(positions) == 2

    def test_rejects_too_narrow(self):
        with pytest.raises(TopologyError):
            rectangular_vl_border_positions(1, 4)


class TestIterPositions:
    def test_row_major_order(self):
        assert list(iter_positions(2, 2)) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_count(self):
        assert len(list(iter_positions(4, 3))) == 12
