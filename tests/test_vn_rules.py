"""Rules 1-3 and Algorithm 1's VN assignment (repro.core.vn)."""

import pytest

from repro.core.vn import (
    VN0,
    VN1,
    PortClass,
    allowed_output_vns,
    assign_injection_vn,
    boundary_down_vns,
    check_hop_legal,
    classify_turn,
    interposer_up_vn,
)
from repro.errors import RoutingError

H, U, D, L = PortClass.HORIZONTAL, PortClass.UP, PortClass.DOWN, PortClass.LOCAL


class TestRule1:
    """Routing from VN.1 to VN.0 is forbidden; VN.0 -> VN.1 allowed."""

    def test_vn0_can_stay_or_upgrade(self):
        assert allowed_output_vns(H, H, VN0) == (VN0, VN1)

    def test_vn1_cannot_downgrade(self):
        assert allowed_output_vns(H, H, VN1) == (VN1,)

    def test_check_hop_rejects_downgrade(self):
        with pytest.raises(RoutingError, match="Rule 1"):
            check_hop_legal(H, H, VN1, VN0)


class TestRule2:
    """Up -> Horizontal turns may not land in VN.0 (Theorem III.4: a VN.0
    packet switches to VN.1 while turning)."""

    def test_up_to_horizontal_forces_vn1_for_vn0_packets(self):
        assert allowed_output_vns(U, H, VN0) == (VN1,)

    def test_up_to_horizontal_allowed_in_vn1(self):
        assert allowed_output_vns(U, H, VN1) == (VN1,)

    def test_up_to_local_unrestricted(self):
        # Ejection is not a Horizontal port.
        assert allowed_output_vns(U, L, VN0) == (VN0, VN1)

    def test_check_hop_rejects_rule2(self):
        # Staying in VN.0 across the turn is the forbidden case.
        with pytest.raises(RoutingError, match="Rule 2"):
            check_hop_legal(U, H, VN0, VN0)

    def test_check_hop_allows_switch_while_turning(self):
        check_hop_legal(U, H, VN0, VN1)  # must not raise


class TestRule3:
    """VN.1 packets may not route from Horizontal ports to a Down port."""

    def test_horizontal_to_down_forbidden_in_vn1(self):
        assert allowed_output_vns(H, D, VN1) == ()

    def test_horizontal_to_down_allowed_in_vn0(self):
        assert allowed_output_vns(H, D, VN0) == (VN0, VN1)

    def test_local_to_down_exempt(self):
        # Injection at a boundary router may descend in either VN.
        assert allowed_output_vns(L, D, VN1) == (VN1,)
        assert allowed_output_vns(L, D, VN0) == (VN0, VN1)

    def test_check_hop_rejects_rule3(self):
        with pytest.raises(RoutingError, match="Rule 3"):
            check_hop_legal(H, D, VN1, VN1)


class TestTheorems:
    """The theorems' statements as executable checks."""

    def test_theorem_iii_1_intra_chiplet_uses_both_vns(self):
        # Horizontal-only movement is legal in both VNs.
        for vn in (VN0, VN1):
            assert vn in allowed_output_vns(L, H, vn)
            assert vn in allowed_output_vns(H, H, vn)

    def test_theorem_iii_3_any_vl_on_source_chiplet(self):
        # Horizontal -> Down in VN.0 with both output VNs available.
        assert allowed_output_vns(H, D, VN0) == (VN0, VN1)
        # Down -> Horizontal afterwards, either VN.
        assert allowed_output_vns(D, H, VN0) == (VN0, VN1)
        assert allowed_output_vns(D, H, VN1) == (VN1,)

    def test_theorem_iii_4_any_vl_to_destination_chiplet(self):
        # Horizontal -> Up regardless of VN.
        assert allowed_output_vns(H, U, VN0) == (VN0, VN1)
        assert allowed_output_vns(H, U, VN1) == (VN1,)
        # After ascending, the packet continues horizontally in VN.1,
        # switching on the turn if it ascended in VN.0.
        assert allowed_output_vns(U, H, VN1) == (VN1,)
        assert allowed_output_vns(U, H, VN0) == (VN1,)


class TestAlgorithm1Assignment:
    def test_interposer_source_round_robins(self):
        vn0, state = assign_injection_vn(True, False, False, 0)
        vn1, state = assign_injection_vn(True, False, False, state)
        assert (vn0, vn1) == (VN0, VN1)

    def test_intra_chiplet_round_robins(self):
        vn0, state = assign_injection_vn(False, False, True, 0)
        vn1, _ = assign_injection_vn(False, False, True, state)
        assert {vn0, vn1} == {VN0, VN1}

    def test_boundary_source_round_robins(self):
        vn0, state = assign_injection_vn(False, True, False, 0)
        vn1, _ = assign_injection_vn(False, True, False, state)
        assert {vn0, vn1} == {VN0, VN1}

    def test_other_inter_chiplet_sources_get_vn0(self):
        for rr in range(4):
            vn, new_rr = assign_injection_vn(False, False, False, rr)
            assert vn == VN0
            assert new_rr == rr  # round-robin state untouched

    def test_boundary_down_vns(self):
        assert boundary_down_vns(VN0) == (VN0, VN1)
        assert boundary_down_vns(VN1) == (VN1,)

    def test_interposer_up_vn_is_vn1(self):
        assert interposer_up_vn() == VN1


class TestClassifyTurn:
    def test_label(self):
        assert classify_turn(H, D) == "HORIZONTAL->DOWN"
        assert classify_turn(U, L) == "UP->LOCAL"
