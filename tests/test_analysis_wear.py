"""VL wear / relative-lifetime analysis."""

import math

import pytest

from repro.analysis.wear import vl_wear_report, wear_summary_row
from repro.config import SimulationConfig
from repro.fault.model import chiplet_fault_pattern
from repro.network.simulator import Simulator
from repro.network.stats import StatsCollector
from repro.routing.deft import DeftRouting, VlSelectionStrategy
from repro.traffic.synthetic import UniformTraffic


class TestWearModel:
    def test_idle_network_reports_unity(self, system4):
        stats = StatsCollector(system4, num_vcs=2)
        stats.cycles_run = 1000
        report = vl_wear_report(system4, stats)
        assert report.imbalance == 1.0
        assert report.min_relative_mttf == 1.0

    def test_balanced_load_gives_unity_mttf(self, system4):
        stats = StatsCollector(system4, num_vcs=2)
        stats.cycles_run = 1000
        for link in system4.vls:
            stats.vl_flits[(link.index, 0)] = 100
            stats.vl_flits[(link.index, 1)] = 100
        report = vl_wear_report(system4, stats)
        assert report.imbalance == pytest.approx(1.0)
        assert report.min_relative_mttf == pytest.approx(1.0)

    def test_hot_channel_wears_quadratically(self, system4):
        stats = StatsCollector(system4, num_vcs=2)
        stats.cycles_run = 1000
        # One channel at double the load of the others.
        for link in system4.vls:
            stats.vl_flits[(link.index, 0)] = 100
        stats.vl_flits[(0, 0)] = 200
        report = vl_wear_report(system4, stats)
        mean = (15 * 100 + 200) / 16 / 1000
        expected = (mean / 0.2) ** 2.0
        assert report.relative_mttf[(0, 0)] == pytest.approx(expected)
        assert report.min_relative_mttf == pytest.approx(expected)
        assert report.imbalance > 1.5

    def test_unused_channels_live_forever(self, system4):
        stats = StatsCollector(system4, num_vcs=2)
        stats.cycles_run = 1000
        stats.vl_flits[(0, 0)] = 100
        report = vl_wear_report(system4, stats)
        assert math.isinf(report.relative_mttf[(1, 0)])

    def test_hottest_channels_sorted(self, system4):
        stats = StatsCollector(system4, num_vcs=2)
        stats.cycles_run = 100
        stats.vl_flits[(3, 0)] = 50
        stats.vl_flits[(1, 1)] = 30
        stats.vl_flits[(2, 0)] = 10
        report = vl_wear_report(system4, stats)
        hottest = report.hottest_channels(2)
        assert hottest[0][0] == (3, 0)
        assert hottest[1][0] == (1, 1)

    def test_summary_row_format(self, system4):
        stats = StatsCollector(system4, num_vcs=2)
        stats.cycles_run = 10
        row = wear_summary_row("x", vl_wear_report(system4, stats))
        assert "wear imbalance" in row


class TestWearIntegration:
    def test_optimized_beats_distance_under_fault(self, system4):
        """The reliability argument of Section III-B, measured."""
        state = chiplet_fault_pattern(system4, 0, down_faulty=[0]).with_faults(
            chiplet_fault_pattern(system4, 1, down_faulty=[1]).faults
        )
        config = SimulationConfig(
            warmup_cycles=200, measure_cycles=1_500, drain_cycles=8_000, seed=3
        )
        imbalances = {}
        for strategy in (VlSelectionStrategy.OPTIMIZED, VlSelectionStrategy.DISTANCE):
            algorithm = DeftRouting(system4, strategy)
            algorithm.set_fault_state(state)
            traffic = UniformTraffic(system4, 0.006, seed=3)
            report = Simulator(system4, algorithm, traffic, config).run()
            imbalances[strategy] = vl_wear_report(system4, report.stats).imbalance
        assert (
            imbalances[VlSelectionStrategy.OPTIMIZED]
            < imbalances[VlSelectionStrategy.DISTANCE]
        )
