"""Cycle-accurate simulator behaviour: delivery, latency math, wormhole,
credits, watchdog, determinism."""

import pytest

from repro.config import SimulationConfig
from repro.errors import DeadlockError
from repro.network.simulator import Simulator, _partition_vcs
from repro.routing.deft import DeftRouting
from repro.routing.naive import NaiveRouting
from repro.routing.rc import RcRouting
from repro.traffic.base import TraceEntry, TraceTraffic
from repro.traffic.synthetic import UniformTraffic


def _single_packet_sim(system, algo, src, dst, config=None):
    traffic = TraceTraffic([TraceEntry(0, src, dst)])
    config = config or SimulationConfig(
        warmup_cycles=0, measure_cycles=5, drain_cycles=3000
    )
    sim = Simulator(system, algo, traffic, config)
    report = sim.run()
    return report


class TestSinglePacketDelivery:
    def test_intra_chiplet_packet_latency_math(self, system4):
        """Zero-load latency = hops x hop_latency + serialization + NIC/eject."""
        src = system4.router_id(0, 0, 0)
        dst = system4.router_id(0, 3, 0)  # 3 hops
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=5, drain_cycles=2000,
                               hop_latency=1, credit_latency=1)
        report = _single_packet_sim(system4, DeftRouting(system4), src, dst, cfg)
        assert report.stats.packets_delivered == 1
        # Head needs ~3 router hops; the 7 remaining flits follow at one
        # per cycle. With hop_latency=1 the measured latency must sit near
        # hops + packet size (small fixed NIC/ejection pipeline on top).
        latency = report.stats.latency.minimum
        assert 3 + 7 <= latency <= 3 + 8 + 6

    def test_hop_latency_scales_head_arrival(self, system4):
        src = system4.router_id(0, 0, 0)
        dst = system4.router_id(0, 3, 0)
        latencies = {}
        for hop_latency in (1, 4):
            cfg = SimulationConfig(
                warmup_cycles=0, measure_cycles=5, drain_cycles=3000,
                hop_latency=hop_latency, credit_latency=hop_latency,
            )
            report = _single_packet_sim(system4, DeftRouting(system4), src, dst, cfg)
            latencies[hop_latency] = report.stats.latency.minimum
        # 3 extra cycles per hop over 3+1 hops (incl. ejection stage).
        assert latencies[4] - latencies[1] >= 6

    def test_inter_chiplet_packet_delivered(self, system4):
        src = system4.chiplet_routers(0)[0].id
        dst = system4.chiplet_routers(3)[15].id
        report = _single_packet_sim(system4, DeftRouting(system4), src, dst)
        assert report.stats.packets_delivered == 1
        assert report.stats.packets_dropped_unroutable == 0

    def test_hops_recorded(self, system4):
        src = system4.router_id(0, 0, 0)
        dst = system4.router_id(0, 2, 2)
        report = _single_packet_sim(system4, DeftRouting(system4), src, dst)
        assert report.stats.hops.minimum == 4

    def test_rc_store_and_forward_penalty(self, system4):
        src = system4.chiplet_routers(0)[0].id
        dst = system4.chiplet_routers(1)[0].id
        deft_report = _single_packet_sim(system4, DeftRouting(system4), src, dst)
        rc_report = _single_packet_sim(system4, RcRouting(system4), src, dst)
        # RC pays the permission round-trip + whole-packet buffering even
        # with an idle network.
        assert rc_report.stats.latency.minimum >= deft_report.stats.latency.minimum + 8


class TestWormholeAndCredits:
    def test_flit_conservation_under_load(self, system4, fast_config):
        traffic = UniformTraffic(system4, 0.01, seed=3)
        sim = Simulator(system4, DeftRouting(system4), traffic, fast_config)
        report = sim.run()
        stats = report.stats
        # Every measured packet either delivered or still accounted.
        assert stats.packets_delivered_measured <= stats.packets_measured
        assert stats.packets_delivered > 0
        # Delivered packets ejected size flits each; in-flight non-negative.
        assert sim._flits_in_flight >= 0

    def test_credits_restored_when_idle(self, system4, fast_config):
        traffic = UniformTraffic(system4, 0.008, seed=5)
        sim = Simulator(system4, DeftRouting(system4), traffic, fast_config)
        sim.run()
        # drain any residual in-flight flits
        sim.run_cycles(3000, generate=False)
        if sim._flits_in_flight == 0:
            for state in sim.routers:
                for port_credits in state.credits:
                    for credit in port_credits:
                        assert credit == fast_config.buffer_depth

    def test_buffers_empty_after_drain(self, system4, fast_config):
        traffic = UniformTraffic(system4, 0.005, seed=2)
        sim = Simulator(system4, DeftRouting(system4), traffic, fast_config)
        sim.run()
        sim.run_cycles(3000, generate=False)
        if sim._flits_in_flight == 0:
            for state in sim.routers:
                for port_buffers in state.buffers:
                    for buffer in port_buffers:
                        assert not buffer

    def test_no_vc_interleaving(self, system4):
        """Within one VC buffer, flits of one packet stay contiguous."""
        traffic = UniformTraffic(system4, 0.02, seed=4)
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=300, drain_cycles=0,
                               watchdog_cycles=0)
        sim = Simulator(system4, DeftRouting(system4), traffic, cfg)
        for _ in range(300):
            sim._step(generate=True)
            for state in sim.routers:
                for port_buffers in state.buffers:
                    for buffer in port_buffers:
                        # The head may already have moved on (wormhole), so
                        # leading headless flits are fine — but the packet
                        # id may only change at a head flit.
                        current = None
                        for flit in buffer:
                            if flit.is_head:
                                current = flit.packet.id
                            elif current is not None:
                                assert flit.packet.id == current
                            else:
                                current = flit.packet.id


class TestDeterminism:
    def test_same_seed_same_results(self, system4, fast_config):
        def once():
            traffic = UniformTraffic(system4, 0.006, seed=9)
            sim = Simulator(system4, DeftRouting(system4), traffic, fast_config)
            report = sim.run()
            return (
                report.stats.packets_delivered,
                report.stats.average_latency,
                report.stats.flit_hops,
            )

        assert once() == once()


class TestUnroutableAccounting:
    def test_dropped_packets_counted(self, system4, fast_config):
        from repro.fault.model import chiplet_fault_pattern

        algo = RcRouting(system4)
        algo.set_fault_state(chiplet_fault_pattern(system4, 0, down_faulty=[0]))
        traffic = UniformTraffic(system4, 0.01, seed=3)
        report = Simulator(system4, algo, traffic, fast_config).run()
        assert report.stats.packets_dropped_unroutable > 0
        assert report.stats.delivered_ratio < 1.0

    def test_deft_drops_nothing_under_faults(self, system4, fast_config):
        from repro.fault.model import chiplet_fault_pattern

        algo = DeftRouting(system4)
        algo.set_fault_state(
            chiplet_fault_pattern(system4, 0, down_faulty=[0, 1, 2])
        )
        traffic = UniformTraffic(system4, 0.005, seed=3)
        report = Simulator(system4, algo, traffic, fast_config).run()
        assert report.stats.packets_dropped_unroutable == 0
        assert report.stats.delivered_ratio == 1.0


class TestWatchdog:
    def test_naive_routing_deadlocks_under_stress(self, system4):
        """The Fig. 1 motivation: the unprotected configuration wedges."""
        cfg = SimulationConfig(
            warmup_cycles=0,
            measure_cycles=4_000,
            drain_cycles=0,
            num_vcs=1,
            watchdog_cycles=1_500,
        )
        traffic = UniformTraffic(system4, 0.03, seed=1)
        sim = Simulator(system4, NaiveRouting(system4), traffic, cfg)
        with pytest.raises(DeadlockError):
            sim.run_cycles(cfg.measure_cycles)

    @pytest.mark.slow
    def test_deft_survives_the_same_stress(self, system4):
        cfg = SimulationConfig(
            warmup_cycles=0,
            measure_cycles=4_000,
            drain_cycles=0,
            watchdog_cycles=1_500,
        )
        traffic = UniformTraffic(system4, 0.03, seed=1)
        sim = Simulator(system4, DeftRouting(system4), traffic, cfg)
        sim.run_cycles(cfg.measure_cycles)  # must not raise

    def test_run_reports_deadlock_flag(self, system4):
        cfg = SimulationConfig(
            warmup_cycles=0,
            measure_cycles=4_000,
            drain_cycles=0,
            num_vcs=1,
            watchdog_cycles=1_500,
        )
        traffic = UniformTraffic(system4, 0.03, seed=1)
        report = Simulator(system4, NaiveRouting(system4), traffic, cfg).run()
        assert report.deadlocked


class TestVcPartition:
    def test_two_vcs(self):
        assert _partition_vcs(2) == ((0,), (1,))

    def test_four_vcs(self):
        assert _partition_vcs(4) == ((0, 1), (2, 3))

    def test_three_vcs_gives_extra_to_vn1(self):
        vn0, vn1 = _partition_vcs(3)
        assert len(vn1) > len(vn0)

    def test_single_vc_shared(self):
        assert _partition_vcs(1) == ((0,), (0,))


class TestMoreVcsStillWork(object):
    def test_four_vc_simulation(self, system4):
        cfg = SimulationConfig(
            warmup_cycles=50, measure_cycles=300, drain_cycles=4000, num_vcs=4
        )
        traffic = UniformTraffic(system4, 0.006, seed=2)
        report = Simulator(system4, DeftRouting(system4), traffic, cfg).run()
        assert report.stats.delivered_ratio == 1.0
        assert not report.deadlocked
