"""SimulationConfig / SweepConfig validation and serialization."""

import pytest

from repro.config import SimulationConfig, SweepConfig
from repro.errors import ConfigurationError


class TestSimulationConfigValidation:
    def test_defaults_are_paper_parameters(self):
        cfg = SimulationConfig()
        assert cfg.packet_size == 8
        assert cfg.buffer_depth == 4
        assert cfg.num_vcs == 2
        assert cfg.flit_width_bits == 32

    @pytest.mark.parametrize("field,value", [
        ("packet_size", 0),
        ("buffer_depth", 0),
        ("num_vcs", 0),
        ("flit_width_bits", 0),
        ("hop_latency", 0),
        ("credit_latency", 0),
        ("warmup_cycles", -1),
        ("measure_cycles", -5),
        ("drain_cycles", -1),
        ("watchdog_cycles", -2),
    ])
    def test_rejects_invalid_values(self, field, value):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**{field: value})

    def test_total_cycles(self):
        cfg = SimulationConfig(warmup_cycles=10, measure_cycles=20, drain_cycles=30)
        assert cfg.total_cycles == 60

    def test_replace_returns_modified_copy(self):
        cfg = SimulationConfig()
        other = cfg.replace(seed=99)
        assert other.seed == 99
        assert cfg.seed == 1
        assert other.packet_size == cfg.packet_size

    def test_replace_validates(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig().replace(buffer_depth=-1)


class TestSimulationConfigSerialization:
    def test_dict_roundtrip(self):
        cfg = SimulationConfig(seed=5, measure_cycles=123)
        assert SimulationConfig.from_dict(cfg.to_dict()) == cfg

    def test_json_roundtrip(self):
        cfg = SimulationConfig(packet_size=4, num_vcs=4)
        assert SimulationConfig.from_json(cfg.to_json()) == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            SimulationConfig.from_dict({"bogus_field": 1})


class TestSweepConfig:
    def test_valid(self):
        sweep = SweepConfig(rates=(0.001, 0.002))
        assert sweep.repeats == 1

    def test_needs_rates(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(rates=())

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(rates=(0.001, -0.1))

    def test_rejects_zero_repeats(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(rates=(0.001,), repeats=0)
