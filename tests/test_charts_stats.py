"""ASCII chart rendering, stats collector details, CLI deadlock command."""

import pytest

from repro.experiments.charts import ascii_chart, bar_rows
from repro.network.stats import LatencySummary, StatsCollector
from repro.topology.geometry import INTERPOSER_LAYER


class TestAsciiChart:
    def test_empty_series(self):
        assert ascii_chart({}) == "(no data)"

    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20,
            height=5,
            title="demo",
        )
        assert "o=a" in chart and "x=b" in chart
        assert "demo" in chart
        assert "o" in chart and "x" in chart

    def test_axis_labels(self):
        chart = ascii_chart({"s": [(0.0, 10.0), (2.0, 30.0)]}, x_label="rate")
        assert "10.0" in chart and "30.0" in chart
        assert "rate" in chart

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart({"s": [(0, 5), (1, 5)]})
        assert "5.0" in chart


class TestBarRows:
    def test_empty(self):
        assert bar_rows({}) == []

    def test_bars_scale_with_values(self):
        rows = bar_rows({"small": 1.0, "big": 10.0}, width=10, unit="%")
        small_row = next(r for r in rows if "small" in r)
        big_row = next(r for r in rows if "big" in r)
        assert big_row.count("#") > small_row.count("#")
        assert "%" in big_row

    def test_negative_values_marked(self):
        rows = bar_rows({"neg": -2.0, "pos": 2.0})
        assert any("-" in r and "neg" in r for r in rows)


class TestLatencySummary:
    def test_empty_average_is_nan(self):
        import math

        assert math.isnan(LatencySummary().average)

    def test_min_max_tracking(self):
        summary = LatencySummary()
        for value in (5, 2, 9):
            summary.record(value)
        assert summary.minimum == 2
        assert summary.maximum == 9
        assert summary.average == pytest.approx(16 / 3)

    def test_percentiles_nearest_rank(self):
        summary = LatencySummary()
        for value in range(1, 101):  # 1..100
            summary.record(value)
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0
        assert summary.percentile(100) == 100.0

    def test_percentile_single_sample(self):
        summary = LatencySummary()
        summary.record(42)
        assert summary.p50 == 42.0
        assert summary.p99 == 42.0

    def test_percentile_empty_is_nan(self):
        import math

        assert math.isnan(LatencySummary().p95)

    def test_percentile_validates_range(self):
        summary = LatencySummary()
        summary.record(1)
        with pytest.raises(ValueError):
            summary.percentile(101)

    def test_tail_exceeds_median_under_skew(self):
        summary = LatencySummary()
        for value in [10] * 90 + [500] * 10:
            summary.record(value)
        assert summary.p50 == 10.0
        assert summary.p95 == 500.0


class TestStatsCollector:
    def test_vc_utilization_even_split_when_idle(self, system4):
        stats = StatsCollector(system4, num_vcs=2)
        assert stats.vc_utilization(INTERPOSER_LAYER) == [0.5, 0.5]

    def test_vc_utilization_reflects_counts(self, system4):
        stats = StatsCollector(system4, num_vcs=2)
        for _ in range(3):
            stats.on_flit_transfer(INTERPOSER_LAYER, 0)
        stats.on_flit_transfer(INTERPOSER_LAYER, 1)
        assert stats.vc_utilization(INTERPOSER_LAYER) == [0.75, 0.25]

    def test_delivered_ratio_nan_without_measured_traffic(self, system4):
        import math

        stats = StatsCollector(system4, num_vcs=2)
        assert math.isnan(stats.delivered_ratio)

    def test_delivered_ratio_counts_drops(self, system4):
        stats = StatsCollector(system4, num_vcs=2)
        stats.on_packet_created(True)
        stats.on_packet_created(True)
        stats.on_packet_delivered(10, 4, True)
        stats.on_packet_dropped(True)
        assert stats.delivered_ratio == 0.5

    def test_vl_load_report_covers_all_links(self, system4):
        stats = StatsCollector(system4, num_vcs=2)
        stats.on_vl_traversal(2, 0)
        stats.on_vl_traversal(2, 1)
        stats.on_vl_traversal(2, 1)
        report = stats.vl_load_report()
        assert len(report) == len(system4.vls)
        assert report[2] == (1, 2)
        assert report[0] == (0, 0)


class TestCliDeadlockCommand:
    def test_protected_algorithm_returns_zero(self, capsys):
        from repro.cli import main

        assert main(["deadlock", "--algo", "deft", "--system", "2x1"]) == 0
        assert "acyclic" in capsys.readouterr().out

    def test_naive_returns_error_code(self, capsys):
        from repro.cli import main

        assert main(["deadlock", "--algo", "naive", "--system", "2x1"]) == 2
        assert "CYCLIC" in capsys.readouterr().out
