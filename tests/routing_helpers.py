"""Shared helpers for routing tests: symbolic path walking."""

from __future__ import annotations

from repro.core.vn import PortClass, check_hop_legal
from repro.network.flit import Packet
from repro.routing.base import Port, opposite_port
from repro.topology.builder import System


def walk_packet(
    system: System,
    algorithm,
    src: int,
    dst: int,
    max_hops: int = 200,
    verify_vn_rules: bool = False,
    prefer_vn: int | None = None,
):
    """Walk a packet hop by hop through an algorithm's route decisions.

    Returns ``(path, packet)`` where ``path`` is the list of visited router
    ids ending at the destination. ``prefer_vn`` picks the given VN from
    the allowed set when present (else the first option), letting tests
    explore both VN branches. With ``verify_vn_rules`` every hop is checked
    against Rules 1-3.
    """
    packet = Packet(0, src, dst, size=8, created_cycle=0)
    algorithm.prepare_packet(packet)
    current, in_port = src, Port.LOCAL
    path = [current]
    for _ in range(max_hops):
        decision = algorithm.route(packet, current, in_port)
        router = system.routers[current]
        if verify_vn_rules:
            vn_in = packet.vn
            in_kind = _port_class(router, in_port, incoming=True)
            out_kind = _port_class(router, decision.out_port, incoming=False)
            assert decision.allowed_vns, "empty VN set"
            for vn_out in decision.allowed_vns:
                check_hop_legal(in_kind, out_kind, vn_in, vn_out)
        if decision.out_port == Port.LOCAL:
            assert current == dst, f"ejected at {current}, wanted {dst}"
            return path, packet
        if decision.out_port == Port.VERTICAL:
            nxt = router.vertical_neighbor
            next_in = Port.VERTICAL
        else:
            nxt = router.neighbors[decision.out_port]
            next_in = opposite_port(decision.out_port)
        assert nxt is not None, "route used a missing port"
        chosen = decision.allowed_vns[0]
        if prefer_vn is not None and prefer_vn in decision.allowed_vns:
            chosen = prefer_vn
        packet.vn = chosen
        current, in_port = nxt, next_in
        path.append(current)
    raise AssertionError(f"packet looped: {src}->{dst} via {path[:20]}...")


def _port_class(router, port: Port, incoming: bool) -> PortClass:
    """Map a physical port to the paper's Up/Down/Horizontal/Local classes."""
    if port == Port.LOCAL:
        return PortClass.LOCAL
    if port == Port.VERTICAL:
        if incoming:
            # Arrived vertically: an up-traversal if we are on a chiplet.
            return PortClass.DOWN if router.is_interposer else PortClass.UP
        # Leaving vertically: down from a chiplet, up from the interposer.
        return PortClass.UP if router.is_interposer else PortClass.DOWN
    return PortClass.HORIZONTAL


def minimal_hops(system: System, packet: Packet) -> int:
    """Hop count of the three-phase minimal route bound to a packet."""
    src = system.routers[packet.src]
    dst = system.routers[packet.dst]
    if src.layer == dst.layer:
        return system.distance_on_layer(packet.src, packet.dst)
    hops = 0
    position = packet.src
    if not src.is_interposer:
        assert packet.down_vl is not None
        down = system.vls[packet.down_vl]
        hops += system.distance_on_layer(position, down.chiplet_router) + 1
        position = down.interposer_router
    if not dst.is_interposer:
        assert packet.up_vl is not None
        up = system.vls[packet.up_vl]
        hops += system.distance_on_layer(position, up.interposer_router) + 1
        position = up.chiplet_router
    hops += system.distance_on_layer(position, packet.dst)
    return hops
