"""MTR and RC baseline behaviour: bindings, restrictions, permissions."""

import pytest

from repro.errors import UnroutablePacketError
from repro.fault.model import chiplet_fault_pattern, fault_free
from repro.network.flit import Packet
from repro.routing.mtr import MtrRouting
from repro.routing.naive import NaiveRouting
from repro.routing.rc import RcRouting

from .routing_helpers import walk_packet


@pytest.fixture()
def mtr(system4):
    return MtrRouting(system4)


@pytest.fixture()
def rc(system4):
    return RcRouting(system4)


class TestMtrLegalSets:
    def test_column_partition_gives_two_vls_per_router(self, system4, mtr):
        for chiplet in range(4):
            for router in system4.chiplet_routers(chiplet):
                legal = mtr._legal_down[router.id]
                assert len(legal) == 2
                columns = {link.cx for link in legal}
                assert len(columns) == 1  # both on the router's side

    def test_west_routers_use_west_vls(self, system4, mtr):
        router = system4.router_id(0, 0, 2)
        assert all(link.cx == 1 for link in mtr._legal_down[router])
        router = system4.router_id(0, 3, 2)
        assert all(link.cx == 2 for link in mtr._legal_down[router])

    def test_legal_set_ordered_nearest_first(self, system4, mtr):
        router = system4.router_id(0, 0, 0)
        legal = mtr._legal_down[router]
        distances = [abs(0 - l.cx) + abs(0 - l.cy) for l in legal]
        assert distances == sorted(distances)


class TestMtrRouting:
    def test_all_pairs_deliver_fault_free(self, system4, mtr):
        for src in system4.cores[::9]:
            for dst in system4.cores[::8]:
                if src != dst:
                    path, _ = walk_packet(system4, mtr, src, dst, verify_vn_rules=True)
                    assert path[-1] == dst

    def test_tolerates_any_single_fault(self, system4, mtr):
        """The paper's claim: MTR keeps 100% reachability at one fault."""
        for local in range(4):
            mtr.set_fault_state(chiplet_fault_pattern(system4, 0, down_faulty=[local]))
            try:
                for src in (r.id for r in system4.chiplet_routers(0)[::3]):
                    dst = system4.chiplet_routers(2)[0].id
                    assert mtr.is_routable(src, dst)
                    path, _ = walk_packet(system4, mtr, src, dst)
                    assert path[-1] == dst
            finally:
                mtr.set_fault_state(fault_free(system4))

    def test_rebinds_within_partition(self, system4, mtr):
        # West column VLs are local indices 0 (1,0) and 2 (1,3).
        mtr.set_fault_state(chiplet_fault_pattern(system4, 0, down_faulty=[0]))
        try:
            src = system4.router_id(0, 0, 0)
            link = mtr._bound_down(src)
            assert link.local_index == 2  # the other west VL
        finally:
            mtr.set_fault_state(fault_free(system4))

    def test_partition_loss_makes_pairs_unreachable(self, system4, mtr):
        # Kill both west-column down VLs of chiplet 0 (locals 0 and 2).
        mtr.set_fault_state(chiplet_fault_pattern(system4, 0, down_faulty=[0, 2]))
        try:
            west = system4.router_id(0, 0, 1)
            east = system4.router_id(0, 3, 1)
            remote = system4.chiplet_routers(1)[0].id
            assert not mtr.is_routable(west, remote)
            assert mtr.is_routable(east, remote)
            with pytest.raises(UnroutablePacketError):
                mtr.prepare_packet(Packet(0, west, remote, 8, 0))
        finally:
            mtr.set_fault_state(fault_free(system4))

    def test_layered_vc_discipline(self, system4, mtr):
        """MTR keeps VN.0 until the up-traversal (unbalanced VC use)."""
        src = system4.router_id(0, 0, 1)
        dst = system4.chiplet_routers(3)[9].id
        packet = Packet(0, src, dst, 8, 0)
        mtr.prepare_packet(packet)
        assert packet.vn == 0
        path, packet = walk_packet(system4, mtr, src, dst, verify_vn_rules=True)
        assert packet.vn == 1  # switched at the up link


class TestRcBindings:
    def test_binding_is_nearest_vl(self, system4, rc):
        router = system4.router_id(0, 0, 0)
        assert rc.down_binding(router).local_index == 0  # VL (1,0)
        router = system4.router_id(0, 3, 3)
        assert rc.down_binding(router).local_index == 3  # VL (2,3)

    def test_zero_fault_tolerance(self, system4, rc):
        rc.set_fault_state(chiplet_fault_pattern(system4, 0, down_faulty=[0]))
        try:
            bound = system4.router_id(0, 0, 0)  # bound to VL 0
            remote = system4.chiplet_routers(1)[0].id
            assert not rc.is_routable(bound, remote)
            unaffected = system4.router_id(0, 3, 3)  # bound to VL 3
            assert rc.is_routable(unaffected, remote)
            with pytest.raises(UnroutablePacketError):
                rc.prepare_packet(Packet(0, bound, remote, 8, 0))
        finally:
            rc.set_fault_state(fault_free(system4))

    def test_up_binding_fault_blocks_delivery(self, system4, rc):
        rc.set_fault_state(chiplet_fault_pattern(system4, 1, up_faulty=[0]))
        try:
            src = system4.chiplet_routers(0)[0].id
            blocked_dst = system4.router_id(1, 0, 0)  # bound to VL 0
            ok_dst = system4.router_id(1, 3, 3)
            assert not rc.is_routable(src, blocked_dst)
            assert rc.is_routable(src, ok_dst)
        finally:
            rc.set_fault_state(fault_free(system4))

    def test_rc_flags_descending_packets(self, system4, rc):
        src = system4.router_id(0, 0, 1)
        dst = system4.chiplet_routers(1)[0].id
        packet = Packet(0, src, dst, 8, 0)
        rc.prepare_packet(packet)
        assert packet.needs_rc
        assert packet.rc_boundary == rc.down_binding(src).chiplet_router

    def test_intra_chiplet_skips_rc(self, system4, rc):
        src = system4.router_id(0, 0, 1)
        dst = system4.router_id(0, 2, 2)
        packet = Packet(0, src, dst, 8, 0)
        rc.prepare_packet(packet)
        assert not packet.needs_rc
        assert rc.may_inject(packet, 0)

    def test_boundary_routers_have_rc_buffers(self, system4, rc):
        for link in system4.vls:
            assert rc.uses_rc_buffer(link.chiplet_router)
            assert not rc.uses_rc_buffer(link.interposer_router)


class TestRcPermissionNetwork:
    def test_grant_delay_is_round_trip(self, system4, rc):
        src = system4.router_id(0, 0, 1)  # distance 2 from VL (1,0)
        dst = system4.chiplet_routers(1)[0].id
        packet = Packet(0, src, dst, 8, 0)
        rc.prepare_packet(packet)
        distance = system4.distance_on_layer(src, packet.rc_boundary)
        assert not rc.may_inject(packet, 0)  # grant still in flight
        assert rc.may_inject(packet, 2 * distance + rc.grant_overhead)

    def test_token_serializes_two_sources(self, system4, rc):
        # Two routers bound to the same boundary router.
        a = system4.router_id(0, 0, 0)
        b = system4.router_id(0, 1, 1)
        dst = system4.chiplet_routers(1)[0].id
        pa, pb = Packet(1, a, dst, 8, 0), Packet(2, b, dst, 8, 0)
        rc.prepare_packet(pa)
        rc.prepare_packet(pb)
        assert pa.rc_boundary == pb.rc_boundary
        rc.may_inject(pa, 0)  # a requests first and reserves the token
        assert not rc.may_inject(pb, 0)
        granted_at = 2 * system4.distance_on_layer(a, pa.rc_boundary) + rc.grant_overhead
        assert rc.may_inject(pa, granted_at)
        # b stays blocked until a's RC buffer drains.
        assert not rc.may_inject(pb, granted_at + 100)
        rc.on_rc_buffer_drained(pa.rc_boundary, pa, granted_at + 101)
        later = granted_at + 101 + 2 * system4.distance_on_layer(b, pb.rc_boundary) + rc.grant_overhead
        assert rc.may_inject(pb, later)

    def test_reset_clears_tokens(self, system4, rc):
        src = system4.router_id(0, 0, 0)
        dst = system4.chiplet_routers(1)[0].id
        packet = Packet(0, src, dst, 8, 0)
        rc.prepare_packet(packet)
        rc.may_inject(packet, 0)
        rc.reset_runtime_state()
        fresh = Packet(1, src, dst, 8, 0)
        rc.prepare_packet(fresh)
        rc.may_inject(fresh, 0)  # token free again: reserves immediately
        assert rc._tokens[fresh.rc_boundary].holder == fresh.id


class TestRcRouting:
    def test_all_pairs_deliver(self, system4, rc):
        for src in system4.cores[::9]:
            for dst in system4.cores[::8]:
                if src != dst:
                    path, _ = walk_packet(system4, rc, src, dst, verify_vn_rules=True)
                    assert path[-1] == dst


class TestNaiveRouting:
    def test_delivers_fault_free(self, system4):
        naive = NaiveRouting(system4)
        for src in system4.cores[::11]:
            for dst in system4.cores[::10]:
                if src != dst:
                    path, _ = walk_packet(system4, naive, src, dst)
                    assert path[-1] == dst

    def test_single_vn(self, system4):
        naive = NaiveRouting(system4)
        src, dst = system4.cores[0], system4.cores[40]
        packet = Packet(0, src, dst, 8, 0)
        naive.prepare_packet(packet)
        decision = naive.route(packet, src, 4)
        assert decision.allowed_vns == (0,)
