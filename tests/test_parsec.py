"""PARSEC-like CMP traffic generator (the GEM5-trace substitution)."""

import pytest

from repro.errors import ConfigurationError
from repro.traffic.parsec import (
    APP_PROFILES,
    FIG6A_APPS,
    FIG6B_PAIRS,
    ParsecLikeTraffic,
    app_pair_load,
    directory_nodes,
    shared_l2_nodes,
    two_app_workload,
)


def _drain(generator, cycles=3000):
    packets = []
    for cycle in range(cycles):
        packets.extend(generator.packets_for_cycle(cycle))
    return packets


class TestProfiles:
    def test_eight_applications(self):
        assert len(APP_PROFILES) == 8
        assert set(FIG6A_APPS) == set(APP_PROFILES)

    def test_pair_loads_sorted_as_in_the_paper(self):
        """Fig. 6(b)'s x-axis is sorted by load, FA+FL lowest, ST+FL highest."""
        loads = [app_pair_load(a, b) for a, b in FIG6B_PAIRS]
        assert loads == sorted(loads)
        assert FIG6B_PAIRS[0] == ("FA", "FL")
        assert FIG6B_PAIRS[-1] == ("ST", "FL")

    def test_fractions_are_probabilities(self):
        for profile in APP_PROFILES.values():
            assert 0 <= profile.local_fraction <= 1
            assert 0 <= profile.l2_fraction <= 1
            assert profile.local_fraction + profile.l2_fraction <= 1
            assert 0 <= profile.burstiness < 1


class TestServiceNodes:
    def test_l2_banks_on_interposer(self, system4):
        nodes = shared_l2_nodes(system4)
        assert len(nodes) == 4
        for node in nodes:
            assert system4.routers[node].is_interposer

    def test_directories_colocated_with_dram(self, system4):
        assert set(directory_nodes(system4)) == set(system4.drams)


class TestSingleApplication:
    def test_generates_valid_pairs(self, system4):
        gen = ParsecLikeTraffic(system4, APP_PROFILES["CA"], seed=2)
        packets = _drain(gen)
        assert packets
        valid_nodes = set(system4.cores) | set(gen.service_nodes)
        for src, dst in packets:
            assert src in valid_nodes
            assert dst in valid_nodes
            assert src != dst

    def test_aggregate_rate_tracks_total_load(self, system4):
        profile = APP_PROFILES["ST"]
        gen = ParsecLikeTraffic(system4, profile, seed=3)
        cycles = 5000
        packets = []
        for cycle in range(cycles):
            packets.extend(gen.packets_for_cycle(cycle))
        # cores inject total_load; service nodes add the reply flows.
        expected = profile.total_load * (1 + profile.l2_fraction) * cycles
        assert expected * 0.8 < len(packets) < expected * 1.2

    def test_l2_fraction_reaches_service_nodes(self, system4):
        profile = APP_PROFILES["ST"]  # 50% L2 traffic
        gen = ParsecLikeTraffic(system4, profile, seed=4)
        packets = _drain(gen, 5000)
        service = set(gen.service_nodes)
        to_service = sum(1 for s, d in packets if d in service)
        core_sourced = sum(1 for s, _ in packets if s not in service)
        assert to_service / max(1, core_sourced) > 0.3

    def test_load_scale(self, system4):
        base = ParsecLikeTraffic(system4, APP_PROFILES["DE"], seed=5)
        scaled = ParsecLikeTraffic(system4, APP_PROFILES["DE"], seed=5, load_scale=0.5)
        assert scaled.core_rate == pytest.approx(base.core_rate * 0.5)

    def test_rejects_negative_scale(self, system4):
        with pytest.raises(ConfigurationError):
            ParsecLikeTraffic(system4, APP_PROFILES["DE"], load_scale=-1.0)

    def test_rejects_empty_core_set(self, system4):
        with pytest.raises(ConfigurationError):
            ParsecLikeTraffic(system4, APP_PROFILES["DE"], cores=[])

    def test_burst_modulation_preserves_mean(self, system4):
        profile = APP_PROFILES["DE"]  # bursty app
        gen = ParsecLikeTraffic(system4, profile, seed=6)
        cycles = 20_000
        count = 0
        for cycle in range(cycles):
            count += sum(
                1 for s, _ in gen.packets_for_cycle(cycle) if s in set(gen.cores)
            )
        expected = profile.total_load * cycles
        assert expected * 0.85 < count < expected * 1.15


class TestTwoApplications:
    def test_core_partition_is_disjoint(self, system4):
        workload = two_app_workload(system4, "ST", "FL", seed=1)
        gen_a, gen_b = workload.generators
        assert not (set(gen_a.cores) & set(gen_b.cores))
        assert len(gen_a.cores) == len(gen_b.cores) == 32

    def test_partition_splits_by_chiplet_halves(self, system4):
        workload = two_app_workload(system4, "CA", "FA", seed=1)
        gen_a, gen_b = workload.generators
        layers_a = {system4.routers[c].layer for c in gen_a.cores}
        layers_b = {system4.routers[c].layer for c in gen_b.cores}
        assert layers_a == {0, 1}
        assert layers_b == {2, 3}

    def test_combined_stream_contains_both(self, system4):
        workload = two_app_workload(system4, "ST", "FL", seed=2)
        packets = _drain(workload, 2000)
        gen_a, gen_b = workload.generators
        srcs = {s for s, _ in packets}
        assert srcs & set(gen_a.cores)
        assert srcs & set(gen_b.cores)

    def test_name_reflects_pair(self, system4):
        workload = two_app_workload(system4, "BO", "CA")
        assert workload.name == "BO+CA"

    def test_per_core_rate_doubles_versus_single_app(self, system4):
        single = ParsecLikeTraffic(system4, APP_PROFILES["ST"], seed=1)
        paired = two_app_workload(system4, "ST", "FL", seed=1).generators[0]
        assert paired.core_rate == pytest.approx(single.core_rate * 2.0)
