"""Session layer: reuse across jobs must change wall-clock, never results.

The determinism contract (ISSUE acceptance): executing any job through a
:class:`~repro.runner.session.SessionContext` — serial or process-pool,
first job or hundredth — produces results identical to the sessionless
rebuild-everything path, with no state leaking between fault scenarios.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.runner import (
    CampaignRunner,
    Job,
    ProcessPoolBackend,
    SerialBackend,
    SessionContext,
    SystemRef,
    TrafficSpec,
    execute_job,
    get_session,
    reset_session,
)

TINY = SimulationConfig(
    warmup_cycles=30, measure_cycles=120, drain_cycles=1_500, watchdog_cycles=2_000
)


def job_matrix() -> list[Job]:
    """A little bit of everything: kinds, fault modes, params, algorithms."""
    system = SystemRef.baseline4()
    uniform = TrafficSpec.make("uniform", rate=0.004)
    return [
        Job.make(system, "deft", uniform, TINY, seed=1),
        Job.make(system, "deft", uniform, TINY, seed=2, faults=((2, "down"),)),
        Job.make(system, "mtr", uniform, TINY, seed=1,
                 faults=((0, "down"), (5, "up"))),
        Job.make(system, "rc", uniform, TINY, seed=1),
        Job.make(system, "deft-ran", uniform, TINY, seed=3),
        Job.make(system, "deft", uniform, TINY, seed=1,
                 algorithm_params={"rho": 0.05}),
        Job.make(system, "deft", uniform, TINY, seed=4,
                 faults_mode="sample", fault_k=3, fault_sample=2),
        Job.make(system, "mtr", uniform, TINY, seed=4,
                 faults_mode="sample", fault_k=2, fault_sample=0,
                 kind="reachability"),
        Job.make(system, "deft", uniform, TINY, seed=0, kind="reachability"),
    ]


class TestExecuteJobWithSession:
    def test_identical_to_sessionless(self):
        session = SessionContext()
        jobs = job_matrix()
        # Run the matrix twice through one session so every job also
        # executes against warm (possibly fault-carrying) memo entries.
        for job in jobs + list(reversed(jobs)):
            assert execute_job(job, session=session) == execute_job(job)

    def test_memoizes_systems_and_algorithms(self):
        session = SessionContext()
        job = job_matrix()[0]
        execute_job(job, session=session)
        execute_job(job, session=session)
        system = session.system(job.system)
        assert session.system(job.system) is system
        assert session.stats[("system", "hit")] >= 1
        assert session.stats[("algorithm", "hit")] >= 1

    def test_fault_state_never_leaks(self):
        """A faulted job must not poison the next unfaulted one."""
        session = SessionContext()
        system = SystemRef.baseline4()
        uniform = TrafficSpec.make("uniform", rate=0.004)
        faulted = Job.make(system, "mtr", uniform, TINY, seed=1,
                           faults=((0, "down"),))
        clean = Job.make(system, "mtr", uniform, TINY, seed=1)
        execute_job(faulted, session=session)
        assert execute_job(clean, session=session) == execute_job(clean)
        built = session.system(system)
        algorithm = session.algorithm(
            system, built, "mtr", (), build=lambda: (_ for _ in ()).throw(AssertionError)
        )
        assert algorithm.fault_state.num_faults == 0

    def test_build_errors_are_not_cached(self):
        session = SessionContext()
        bad = Job.make(
            SystemRef.baseline4(), "mtr",
            TrafficSpec.make("uniform", rate=0.004), TINY,
            algorithm_params={"rho": 0.05},  # rho only parameterizes deft
        )
        first = execute_job(bad, session=session)
        second = execute_job(bad, session=session)
        assert not first.ok and not second.ok
        assert "ConfigurationError" in first.error
        assert first == second


class TestBackendsThroughSessions:
    def test_serial_session_matches_seed_path(self):
        jobs = job_matrix()
        with_session = SerialBackend(use_session=True).run(jobs)
        without = SerialBackend(use_session=False).run(jobs)
        assert with_session == without

    def test_process_pool_sessions_match_serial(self):
        jobs = job_matrix()[:6]
        serial = SerialBackend(use_session=False).run(jobs)
        pooled = ProcessPoolBackend(workers=2, use_session=True).run(jobs)
        assert pooled == serial

    def test_campaign_runner_is_session_agnostic(self):
        jobs = job_matrix()[:4]
        sessioned = CampaignRunner(backend=SerialBackend()).run(jobs)
        seeded = CampaignRunner(backend=SerialBackend(use_session=False)).run(jobs)
        assert sessioned.results == seeded.results

    def test_serial_backend_shares_the_process_session(self):
        reset_session()
        try:
            SerialBackend().run(job_matrix()[:1])
            assert len(get_session()) > 0
        finally:
            reset_session()


class TestSessionContext:
    def test_len_and_clear(self):
        session = SessionContext()
        execute_job(job_matrix()[0], session=session)
        assert len(session) > 0
        session.clear()
        assert len(session) == 0

    def test_sampled_fault_states_are_not_memoized(self):
        session = SessionContext()
        sampled = Job.make(
            SystemRef.baseline4(), "deft",
            TrafficSpec.make("uniform", rate=0.004), TINY,
            seed=4, faults_mode="sample", fault_k=3, fault_sample=2,
        )
        system = session.system(sampled.system)
        assert session.fault_state(sampled.system, system, sampled) is None

    def test_process_session_is_per_process(self):
        reset_session()
        try:
            assert get_session() is get_session()
            first = get_session()
            reset_session()
            assert get_session() is not first
        finally:
            reset_session()
