"""Differential fuzz: the vector kernel must be bit-identical to reference.

Every scenario runs the same simulation twice — once under the pure-python
reference kernel, once under the numpy struct-of-arrays vector kernel —
stepping both in lockstep and comparing ``state_digest()`` after *every*
cycle. The digest hashes the full globally-phased snapshot (buffers,
credits, VC owners, assignments, RC units, NICs, stats), so the first
diverging cycle fails immediately instead of surfacing as a mismatched
aggregate hundreds of cycles later.

Scenarios are drawn pseudo-randomly (seeded, so failures reproduce) over
topology, algorithm, injection rate, traffic seed, fault count and
vertical-link serialization. A small sampled subset runs in the fast
lane; the full sweep is ``slow``-marked.
"""

import random

import pytest

from repro.config import SimulationConfig
from repro.fault.model import random_fault_state
from repro.network.simulator import Simulator
from repro.routing.deft import DeftRouting
from repro.routing.mtr import MtrRouting
from repro.routing.naive import NaiveRouting
from repro.routing.rc import RcRouting
from repro.topology.presets import baseline_4_chiplets, baseline_6_chiplets
from repro.traffic.synthetic import UniformTraffic

_ALGOS = {
    "deft": DeftRouting,
    "mtr": MtrRouting,
    "rc": RcRouting,
    "naive": NaiveRouting,
}

_SYSTEMS = {
    "baseline4": baseline_4_chiplets,
    "baseline6": baseline_6_chiplets,
}


def _fuzz_scenario(seed: int) -> dict:
    """One pseudo-random scenario, fully determined by its seed."""
    rng = random.Random(seed)
    algo = rng.choice(("deft", "deft", "mtr", "rc", "naive"))  # deft-weighted
    scenario = {
        "seed": seed,
        "system": rng.choice(tuple(_SYSTEMS)),
        "algo": algo,
        "rate": rng.choice((0.005, 0.01, 0.02, 0.04)),
        "cycles": rng.choice((150, 250, 350)),
        # naive is the deliberately unprotected configuration — faults on
        # top of it just make the deadlock arrive sooner; skip them.
        "k": rng.choice((0, 0, 1, 2, 4)) if algo != "naive" else 0,
        "vl_ser": rng.choice((1, 1, 1, 2, 4)),
        "num_vcs": rng.choice((2, 2, 2, 4)) if algo != "naive" else 1,
    }
    return scenario


def _run_lockstep(scenario: dict) -> None:
    system = _SYSTEMS[scenario["system"]]()
    cfg = SimulationConfig(
        warmup_cycles=50,
        measure_cycles=scenario["cycles"],
        drain_cycles=2000,
        num_vcs=scenario["num_vcs"],
        vl_serialization=scenario["vl_ser"],
        watchdog_cycles=0,  # deadlocks must freeze identically, not raise
    )
    sims = []
    for kernel in ("reference", "vector"):
        algo = _ALGOS[scenario["algo"]](system)
        if scenario["k"]:
            algo.set_fault_state(
                random_fault_state(
                    system, scenario["k"], random.Random(scenario["seed"] + 1)
                )
            )
        traffic = UniformTraffic(system, scenario["rate"], seed=scenario["seed"])
        sims.append(
            Simulator(system, algo, traffic, config=cfg, kernel=kernel)
        )
    ref, vec = sims
    assert vec.kernel_name == "vector", (
        scenario,
        vec.kernel_fallback_reason,
    )
    assert ref.kernel_name == "reference"
    for cycle in range(scenario["cycles"]):
        ref._step(generate=True)
        vec._step(generate=True)
        assert ref.state_digest() == vec.state_digest(), (
            f"kernel divergence at cycle {cycle}: {scenario}"
        )


#: The fast lane samples a handful of seeds spanning the algorithm mix;
#: the slow sweep below covers a wide seeded range.
_FAST_SEEDS = (3, 7, 21)
_SLOW_SEEDS = tuple(range(100, 124))


@pytest.mark.parametrize("seed", _FAST_SEEDS)
def test_kernels_bit_identical_sampled(seed):
    _run_lockstep(_fuzz_scenario(seed))


@pytest.mark.slow
@pytest.mark.parametrize("seed", _SLOW_SEEDS)
def test_kernels_bit_identical_fuzz(seed):
    _run_lockstep(_fuzz_scenario(seed))
