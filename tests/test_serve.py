"""The campaign service: HTTP submit/watch/scrape/tail over a spool.

Everything runs against a real server on an ephemeral loopback port
(threads, not mocks — the SSE and concurrency behaviour being tested
lives in the socket handling). Campaigns are tiny reachability grids so
the suite stays fast; the serial-equality test is the local twin of the
CI serve-smoke job.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.distributed import run_worker
from repro.runner import Campaign, CampaignRunner, ResultCache, SerialBackend
from repro.montecarlo import montecarlo_jobs
from repro.runner.spec import SystemRef
from repro.serve import CampaignService, campaign_from_spec, serve_campaigns
from repro.telemetry.events import EventWriter
from repro.telemetry.manifest import events_dir

SWEEP_SPEC = {
    "name": "serve-sweep",
    "system": "4",
    "algorithms": ["rc"],
    "traffic": "uniform",
    "rates": [0.004, 0.008],
    "seeds": 1,
    "warmup": 50,
    "cycles": 200,
    "drain": 1500,
    "batch": 2,
}


def _finished_frames(frames):
    """Count complete job_finished *data* frames (not the event: line
    that precedes each one — stopping on those can truncate the tail)."""
    return sum(
        1
        for f in frames
        if f.startswith("data: ") and '"event": "job_finished"' in f
    )


def reachability_jobs(samples: int = 3):
    return montecarlo_jobs(
        SystemRef.baseline4(), "rc", 2, samples, seed=0, metric="reachability"
    )


@pytest.fixture()
def server(tmp_path):
    srv = serve_campaigns(
        tmp_path / "spool",
        tmp_path / "cache",
        port=0,
        lease_s=5.0,
        poll_s=0.02,
        stale_worker_s=5.0,
    )
    yield srv
    srv.close()


def get(server, path, timeout=20):
    with urllib.request.urlopen(server.url + path, timeout=timeout) as resp:
        return resp.status, resp.read()


def post(server, payload, timeout=20):
    request = urllib.request.Request(
        server.url + "/campaigns",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def drain(server, **kwargs):
    cache = ResultCache(server.service.cache_dir)
    kwargs.setdefault("idle_timeout_s", 1.0)
    kwargs.setdefault("lease_s", 5.0)
    return run_worker(server.service.spool.root, cache, **kwargs)


class TestRoutes:
    def test_index_lists_endpoints(self, server):
        code, body = get(server, "/")
        assert code == 200
        payload = json.loads(body)
        assert "POST /campaigns" in payload["endpoints"]

    def test_unknown_route_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/nope")
        assert err.value.code == 404

    def test_unknown_campaign_404s(self, server):
        for path in ("/campaigns/ghost", "/campaigns/ghost/trace"):
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server, path)
            assert err.value.code == 404, path

    def test_empty_spool_lists_no_campaigns(self, server):
        code, body = get(server, "/campaigns")
        assert code == 200
        assert json.loads(body)["campaigns"] == []


class TestSubmission:
    def test_sweep_spec_enqueues_batched(self, server):
        code, receipt = post(server, SWEEP_SPEC)
        assert code == 201
        assert receipt["campaign"] == "serve-sweep"
        assert receipt["total"] == 2 == receipt["enqueued"]
        assert receipt["batch_size"] == 2
        # one pending file: both jobs under one lease-to-be
        assert server.service.spool.pending_count() == 2
        code, body = get(server, "/campaigns/serve-sweep")
        snapshot = json.loads(body)
        assert snapshot["total"] == 2 and not snapshot["complete"]

    def test_explicit_jobs_spec(self, server):
        jobs = reachability_jobs(2)
        code, receipt = post(
            server,
            {"name": "explicit", "jobs": [job.canonical() for job in jobs]},
        )
        assert code == 201
        assert receipt["total"] == len({job.key() for job in jobs})

    def test_resubmission_is_idempotent(self, server):
        post(server, SWEEP_SPEC)
        code, receipt = post(server, SWEEP_SPEC)
        assert code == 201
        assert receipt["enqueued"] == 0  # keys already pending

    @pytest.mark.parametrize(
        "spec",
        [
            {"rates": "not-a-list"},
            {"algorithms": [1, 2]},
            {"rates": []},
            {"seeds": 0},
            {"jobs": []},
            {"jobs": [{"garbage": True}]},
            {"system": "not-a-grid"},
            {"warmup": "soon"},
        ],
    )
    def test_bad_specs_400(self, server, spec):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, spec)
        assert err.value.code == 400
        assert "error" in json.loads(err.value.read())

    def test_non_json_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/campaigns", data=b"\xff not json"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_campaign_from_spec_rejects_non_dict(self):
        with pytest.raises(ValueError):
            campaign_from_spec(["not", "a", "dict"])


class TestEndToEnd:
    def test_submitted_campaign_matches_serial(self, server, tmp_path):
        """POST → external drain → bit-identical to the serial backend."""
        code, receipt = post(server, SWEEP_SPEC)
        assert code == 201
        stats = drain(server, worker_id="e2e-w1")
        assert stats["jobs_done"] == receipt["total"]

        code, body = get(server, "/campaigns/serve-sweep")
        snapshot = json.loads(body)
        assert snapshot["complete"] and snapshot["done"] == receipt["total"]
        assert snapshot["failed"] == 0

        # Re-execute the identical grid serially into a separate cache
        # and compare the simulated payloads (duration provenance and
        # cache flags legitimately differ).
        campaign = campaign_from_spec(SWEEP_SPEC)
        serial_cache = ResultCache(tmp_path / "serial-cache")
        runner = CampaignRunner(SerialBackend(), cache=serial_cache)
        report = runner.run(Campaign(name="serial-twin", jobs=campaign.jobs))
        spool_cache = ResultCache(server.service.cache_dir)

        def payload(result):
            # _comparable maps NaN to a sentinel and drops duration
            # provenance; cached-ness differs by construction here.
            data = result._comparable()
            data.pop("cached", None)
            return data

        assert report.results
        for job, serial_result in zip(campaign.jobs, report.results):
            spool_result = spool_cache.get(job)
            assert spool_result is not None, job.key()
            assert payload(spool_result) == payload(serial_result)

    def test_metrics_aggregates_fleet_and_process(self, server):
        post(server, SWEEP_SPEC)
        drain(server, worker_id="metrics-w1")
        code, body = get(server, "/metrics")
        text = body.decode()
        # fleet side: spool depths + per-worker stats-file gauges
        assert "deft_spool_pending_jobs" in text
        assert 'deft_worker_jobs_done{worker="metrics-w1"} 2' in text
        assert 'deft_worker_rss_bytes{worker="metrics-w1"}' in text
        assert 'deft_worker_open_fds{worker="metrics-w1"}' in text
        # server-process side: the service's own registry (shared and
        # cumulative across the test process — presence, not counts)
        assert "deft_serve_scrapes_total" in text
        assert "deft_serve_submissions_total" in text

    def test_trace_endpoint_exports_all_jobs(self, server):
        post(server, SWEEP_SPEC)
        drain(server, worker_id="trace-w1")
        code, body = get(server, "/campaigns/serve-sweep/trace")
        doc = json.loads(body)
        roots = [
            event for event in doc["traceEvents"]
            if event["ph"] == "X" and event["cat"] == "job"
        ]
        assert len(roots) == 2
        phases = [
            event for event in doc["traceEvents"]
            if event["ph"] == "X" and event["cat"] == "phase"
        ]
        assert len(phases) == 2 * 5
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in roots + phases)


class TestServerSentEvents:
    def _tail(self, server, path, stop_when, frames, timeout=30):
        request = urllib.request.Request(server.url + path)
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            for raw in resp:
                line = raw.decode("utf-8").rstrip("\n")
                frames.append(line)
                if stop_when(frames):
                    return

    def test_tail_sees_every_terminal_event(self, server):
        code, receipt = post(server, SWEEP_SPEC)
        frames: list[str] = []

        def done(frames):
            return _finished_frames(frames) >= receipt["total"]

        tail = threading.Thread(
            target=self._tail,
            args=(server, "/events?campaign=serve-sweep", done, frames),
            daemon=True,
        )
        tail.start()
        drain(server, worker_id="sse-w1")
        tail.join(timeout=30)
        assert not tail.is_alive(), "SSE tail never saw the terminal events"
        records = [
            json.loads(f[len("data: "):])
            for f in frames
            if f.startswith("data: ")
        ]
        finished = [r for r in records if r["event"] == "job_finished"]
        assert len(finished) == receipt["total"]
        assert all(record["ok"] for record in finished)

    def test_campaign_filter_drops_foreign_job_events(self, server):
        post(server, SWEEP_SPEC)
        other = {**SWEEP_SPEC, "name": "other", "rates": [0.006]}
        code, other_receipt = post(server, other)
        frames: list[str] = []

        def done(frames):
            return _finished_frames(frames) >= 1

        tail = threading.Thread(
            target=self._tail,
            args=(server, "/events?campaign=other", done, frames),
            daemon=True,
        )
        tail.start()
        drain(server, worker_id="sse-w2", idle_timeout_s=1.5)
        tail.join(timeout=30)
        keys = server.service.campaign_keys("other")
        for frame in frames:
            if not frame.startswith("data: "):
                continue
            record = json.loads(frame[len("data: "):])
            if "key" in record:
                assert record["key"] in keys, record

    def test_client_disconnect_leaves_server_serviceable(self, server):
        post(server, SWEEP_SPEC)
        request = urllib.request.Request(server.url + "/events")
        resp = urllib.request.urlopen(request, timeout=10)
        resp.fp.read(1)  # stream established
        resp.close()  # hang up mid-stream
        # the server must keep answering normal requests afterwards
        for _ in range(3):
            code, _body = get(server, "/campaigns")
            assert code == 200

    def test_sse_unknown_campaign_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/events?campaign=ghost")
        assert err.value.code == 404


class TestConcurrentScrapesAndTails:
    """Satellite: many readers against one live, rotating writer."""

    def test_hammer_metrics_and_sse_against_live_writer(self, server):
        spool_root = server.service.spool.root
        writer = EventWriter(
            events_dir(spool_root) / "hammer.jsonl",
            "hammer",
            max_segment_bytes=600,  # force rotations mid-flight
        )
        total = 60
        terminal = 8

        def write():
            for seq in range(total):
                writer.emit("worker_heartbeat", worker="hammer", seq=seq)
                time.sleep(0.002)
            for seq in range(terminal):
                writer.emit(
                    "job_finished", key=f"hammer-{seq}", worker="hammer",
                    ok=True, cached=False, duration_s=0.01, attempts=1, seq=seq,
                )
            writer.close()

        scrape_errors: list[Exception] = []

        def scrape():
            for _ in range(15):
                try:
                    code, body = get(server, "/metrics")
                    assert code == 200
                    assert b"deft_spool_pending_jobs" in body
                except Exception as exc:  # noqa: BLE001 - collected for the assert
                    scrape_errors.append(exc)

        tails: list[list[str]] = [[] for _ in range(3)]

        def done(frames):
            return _finished_frames(frames) >= terminal

        sse = TestServerSentEvents()
        threads = [threading.Thread(target=write, daemon=True)]
        threads += [threading.Thread(target=scrape, daemon=True) for _ in range(4)]
        threads += [
            threading.Thread(
                target=sse._tail, args=(server, "/events", done, frames),
                daemon=True,
            )
            for frames in tails
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert not scrape_errors, scrape_errors[:3]
        for frames in tails:
            # no torn reads: every data frame must parse
            records = [
                json.loads(f[len("data: "):])
                for f in frames
                if f.startswith("data: ")
            ]
            finished = {
                r["seq"] for r in records if r["event"] == "job_finished"
            }
            assert finished == set(range(terminal)), "dropped terminal events"
            beats = [r["seq"] for r in records if r["event"] == "worker_heartbeat"]
            # rotation-crossing tail: in-order, gap-free heartbeats
            assert beats == sorted(beats)
            assert len(set(beats)) == len(beats)


class TestServiceLifecycle:
    def test_restarted_server_sees_existing_campaigns(self, tmp_path):
        first = serve_campaigns(
            tmp_path / "spool", tmp_path / "cache", port=0, poll_s=0.02
        )
        try:
            post(first, SWEEP_SPEC)
        finally:
            first.close()
        second = serve_campaigns(
            tmp_path / "spool", tmp_path / "cache", port=0, poll_s=0.02
        )
        try:
            code, body = get(second, "/campaigns/serve-sweep")
            assert code == 200
            assert json.loads(body)["total"] == 2
        finally:
            second.close()

    def test_service_usable_without_http(self, tmp_path):
        service = CampaignService(
            tmp_path / "spool", tmp_path / "cache", janitor=False
        )
        try:
            receipt = service.submit(dict(SWEEP_SPEC))
            assert receipt["total"] == 2
            assert service.campaign("serve-sweep")["total"] == 2
            assert service.campaign("missing") is None
            assert "deft_spool_pending_jobs" in service.metrics_text()
        finally:
            service.close()
