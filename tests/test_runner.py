"""Campaign runner: job hashing, cache semantics, campaign plumbing."""

import json

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.runner import (
    Campaign,
    CampaignRunner,
    Job,
    JobResult,
    ResultCache,
    SerialBackend,
    SystemRef,
    TrafficSpec,
    execute_job,
    faults_to_spec,
)


@pytest.fixture()
def tiny_config():
    return SimulationConfig(
        warmup_cycles=30, measure_cycles=120, drain_cycles=1_500, watchdog_cycles=2_000
    )


def tiny_job(tiny_config, *, algorithm="deft", rate=0.004, seed=1, **kwargs):
    return Job.make(
        SystemRef.baseline4(),
        algorithm,
        TrafficSpec.make("uniform", rate=rate),
        tiny_config,
        seed=seed,
        **kwargs,
    )


class TestSystemRef:
    def test_presets_build(self):
        assert SystemRef.baseline4().build().spec.num_chiplets == 4
        assert SystemRef.baseline6().build().spec.num_chiplets == 6

    def test_grid_builds(self):
        system = SystemRef.from_grid(2, 1).build()
        assert system.spec.num_chiplets == 2

    def test_cli_syntax(self):
        assert SystemRef.from_cli("4").preset == "baseline-4-chiplets"
        assert SystemRef.from_cli("6").preset == "baseline-6-chiplets"
        assert SystemRef.from_cli("3x2").grid == (3, 2, 4, 4)

    def test_needs_exactly_one_form(self):
        with pytest.raises(ConfigurationError):
            SystemRef()
        with pytest.raises(ConfigurationError):
            SystemRef(preset="baseline-4-chiplets", grid=(2, 2, 4, 4))

    def test_round_trips(self):
        for ref in (SystemRef.baseline4(), SystemRef.from_grid(3, 2)):
            assert SystemRef.from_dict(ref.to_dict()) == ref


class TestJobHashing:
    def test_key_stable_across_param_ordering(self, tiny_config):
        a = Job.make(
            SystemRef.baseline4(),
            "deft",
            TrafficSpec.make("hotspot", rate=0.004, hotspot_rate=0.1),
            tiny_config,
            faults=((3, "down"), (1, "up")),
        )
        b = Job.make(
            SystemRef.baseline4(),
            "deft",
            TrafficSpec.make("hotspot", hotspot_rate=0.1, rate=0.004),
            tiny_config,
            faults=((1, "up"), (3, "down")),
        )
        assert a.key() == b.key()

    def test_key_depends_on_every_field(self, tiny_config):
        base = tiny_job(tiny_config)
        variants = [
            tiny_job(tiny_config, algorithm="mtr"),
            tiny_job(tiny_config, rate=0.005),
            tiny_job(tiny_config, seed=2),
            tiny_job(tiny_config, faults=((0, "down"),)),
            Job.make(
                SystemRef.baseline6(),
                "deft",
                TrafficSpec.make("uniform", rate=0.004),
                tiny_config,
            ),
            Job.make(
                SystemRef.baseline4(),
                "deft",
                TrafficSpec.make("uniform", rate=0.004),
                tiny_config.replace(measure_cycles=121),
            ),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_config_seed_is_normalized_into_job_seed(self, tiny_config):
        """Two configs differing only in their (overridden) seed hash equal."""
        a = Job.make(
            SystemRef.baseline4(), "deft",
            TrafficSpec.make("uniform", rate=0.004),
            tiny_config.replace(seed=999), seed=5,
        )
        b = Job.make(
            SystemRef.baseline4(), "deft",
            TrafficSpec.make("uniform", rate=0.004),
            tiny_config.replace(seed=111), seed=5,
        )
        assert a.key() == b.key()

    def test_canonical_round_trip(self, tiny_config):
        job = tiny_job(tiny_config, faults=((2, "up"),), algorithm_params={"rho": 0.5})
        rebuilt = Job.from_canonical(json.loads(job.canonical_json()))
        assert rebuilt.key() == job.key()

    def test_rejects_bad_fault_direction(self, tiny_config):
        with pytest.raises(ConfigurationError):
            tiny_job(tiny_config, faults=((2, "sideways"),))

    def test_rejects_non_scalar_params(self, tiny_config):
        with pytest.raises(ConfigurationError):
            TrafficSpec.make("uniform", rate=[0.1])

    def test_faults_to_spec_is_sorted_canonical(self, system4):
        from repro.experiments.fig8 import fault_pattern_25

        spec = faults_to_spec(fault_pattern_25(system4))
        assert spec == tuple(sorted(spec))
        assert all(direction in ("down", "up") for _, direction in spec)


class TestExecuteJob:
    def test_success_metrics(self, tiny_config):
        result = execute_job(tiny_job(tiny_config))
        assert result.ok and result.error is None
        assert result.average_latency > 0
        assert result.delivered_ratio == pytest.approx(1.0)
        assert result.cycles > 0
        assert "interposer" in result.vc_utilization
        assert any(down + up > 0 for down, up in result.vl_loads.values())

    def test_error_capture(self, tiny_config):
        result = execute_job(tiny_job(tiny_config, algorithm="bogus"))
        assert not result.ok
        assert "ConfigurationError" in result.error

    def test_rho_param_changes_tables_not_crash(self, tiny_config):
        result = execute_job(
            tiny_job(tiny_config, algorithm_params={"rho": 10.0},
                     faults=((0, "down"),))
        )
        assert result.ok

    def test_rho_rejected_for_non_deft(self, tiny_config):
        result = execute_job(
            tiny_job(tiny_config, algorithm="mtr", algorithm_params={"rho": 1.0})
        )
        assert not result.ok and "rho" in result.error

    def test_result_round_trip(self, tiny_config):
        result = execute_job(tiny_job(tiny_config))
        rebuilt = JobResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert rebuilt.vl_loads == result.vl_loads

    def test_nan_metrics_survive_round_trip_equality(self, tiny_config):
        """A packet-less run (rate 0) has NaN latency; a serialized copy
        must still compare equal or cache hits would look nondeterministic."""
        result = execute_job(tiny_job(tiny_config, rate=0.0))
        assert result.ok and result.average_latency != result.average_latency
        rebuilt = JobResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        job = tiny_job(tiny_config)
        assert cache.get(job) is None
        result = execute_job(job)
        cache.put(job, result)
        hit = cache.get(job)
        assert hit == result and hit.cached
        assert cache.hits == 1 and cache.misses == 1

    def test_failed_results_never_cached(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        job = tiny_job(tiny_config, algorithm="bogus")
        cache.put(job, execute_job(job))
        assert cache.get(job) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        job = tiny_job(tiny_config)
        cache.put(job, execute_job(job))
        cache.path_for(job).write_text("{not json")
        assert cache.get(job) is None

    def test_len_counts_entries(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        job = tiny_job(tiny_config)
        cache.put(job, execute_job(job))
        assert len(cache) == 1

    def _spoil_version(self, cache, job, version=999):
        path = cache.path_for(job)
        payload = json.loads(path.read_text())
        payload["version"] = version
        path.write_text(json.dumps(payload))

    def test_len_ignores_stale_version_entries(self, tmp_path, tiny_config):
        """Regression: entries `get` will never serve must not be counted."""
        cache = ResultCache(tmp_path)
        job = tiny_job(tiny_config)
        cache.put(job, execute_job(job))
        self._spoil_version(cache, job)
        assert cache.get(job) is None  # unservable...
        assert len(cache) == 0         # ...and now uncounted too

    def test_stats_census(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        fresh, stale = tiny_job(tiny_config), tiny_job(tiny_config, seed=2)
        cache.put(fresh, execute_job(fresh))
        cache.put(stale, execute_job(stale))
        self._spoil_version(cache, stale)
        cache.path_for(fresh).parent.joinpath("tmpleft.tmp").write_text("x")
        corrupt = tiny_job(tiny_config, seed=3)
        cache.put(corrupt, execute_job(corrupt))
        cache.path_for(corrupt).write_text("{not json")
        stats = cache.stats()
        assert (stats.entries, stats.stale, stats.corrupt, stats.tmp_files) \
            == (1, 1, 1, 1)
        assert stats.total_bytes > 0
        assert "1 cached result(s)" in stats.summary()

    def test_prune_sweeps_stale_corrupt_and_tmp(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        fresh, stale = tiny_job(tiny_config), tiny_job(tiny_config, seed=2)
        cache.put(fresh, execute_job(fresh))
        cache.put(stale, execute_job(stale))
        self._spoil_version(cache, stale)
        cache.path_for(fresh).parent.joinpath("tmpleft.tmp").write_text("x")
        removed = cache.prune()
        assert (removed.stale, removed.tmp_files) == (1, 1)
        assert removed.entries == 0
        stats = cache.stats()
        assert (stats.entries, stats.stale, stats.tmp_files) == (1, 0, 0)
        assert cache.get(fresh) is not None  # servable entry survived

    def test_prune_all(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        job = tiny_job(tiny_config)
        cache.put(job, execute_job(job))
        removed = cache.prune(remove_all=True)
        assert removed.entries == 1
        assert len(cache) == 0
        # Empty shard directories are swept with their contents.
        assert not any(p.is_dir() for p in cache.root.iterdir())

    def test_stats_on_missing_root(self, tmp_path):
        stats = ResultCache(tmp_path / "missing").stats()
        assert stats == ResultCache(tmp_path / "missing").prune()
        assert stats.entries == 0

    @staticmethod
    def _backdate(cache, job, days):
        import os
        import time

        stamp = time.time() - days * 86_400
        os.utime(cache.path_for(job), (stamp, stamp))

    def test_prune_older_than_sweeps_only_old_entries(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        old, recent = tiny_job(tiny_config), tiny_job(tiny_config, seed=2)
        cache.put(old, execute_job(old))
        cache.put(recent, execute_job(recent))
        self._backdate(cache, old, days=45)
        self._backdate(cache, recent, days=2)
        removed = cache.prune(older_than_days=30)
        assert removed.entries == 1
        assert cache.get(old) is None
        assert cache.get(recent) is not None

    def test_prune_older_than_also_sweeps_dead_weight(self, tmp_path, tiny_config):
        """Age pruning composes with the default stale/corrupt sweep."""
        cache = ResultCache(tmp_path)
        old, stale = tiny_job(tiny_config), tiny_job(tiny_config, seed=2)
        cache.put(old, execute_job(old))
        cache.put(stale, execute_job(stale))
        self._spoil_version(cache, stale)
        self._backdate(cache, old, days=10)
        removed = cache.prune(older_than_days=7)
        assert (removed.entries, removed.stale) == (1, 1)
        assert len(cache) == 0

    def test_prune_older_than_zero_sweeps_everything_servable(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        job = tiny_job(tiny_config)
        cache.put(job, execute_job(job))
        self._backdate(cache, job, days=0.001)
        assert cache.prune(older_than_days=0).entries == 1

    def test_prune_rejects_negative_age(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune(older_than_days=-1)

    def test_prune_rejects_nan_age(self, tmp_path, tiny_config):
        """NaN must not silently sweep the whole cache (cutoff compares False)."""
        cache = ResultCache(tmp_path)
        job = tiny_job(tiny_config)
        cache.put(job, execute_job(job))
        with pytest.raises(ValueError):
            cache.prune(older_than_days=float("nan"))
        assert cache.get(job) is not None

    def test_prune_now_override_is_deterministic(self, tmp_path, tiny_config):
        import time

        cache = ResultCache(tmp_path)
        job = tiny_job(tiny_config)
        cache.put(job, execute_job(job))
        # Pretend "now" is 31 days in the future: the entry is old.
        future = time.time() + 31 * 86_400
        assert cache.prune(older_than_days=30, now=future).entries == 1


class TestCampaignRunner:
    def test_dedup_and_alignment(self, tiny_config):
        job = tiny_job(tiny_config)
        twin = tiny_job(tiny_config)
        other = tiny_job(tiny_config, seed=2)
        report = CampaignRunner().run([job, other, twin])
        assert report.deduplicated == 1
        assert report.executed == 2
        assert report.results[0] == report.results[2]
        assert report.results[0] != report.results[1]
        assert report.result_for(other) is report.results[1]

    def test_second_run_served_from_cache(self, tmp_path, tiny_config):
        jobs = [tiny_job(tiny_config, rate=rate) for rate in (0.003, 0.004)]
        first = CampaignRunner(cache=ResultCache(tmp_path)).run(
            Campaign(name="warmup", jobs=tuple(jobs))
        )
        second = CampaignRunner(cache=ResultCache(tmp_path)).run(
            Campaign(name="rerun", jobs=tuple(jobs))
        )
        assert first.cache_hits == 0 and first.executed == 2
        assert second.cache_hits == 2 and second.executed == 0
        assert second.hit_ratio == 1.0
        assert second.results == first.results

    def test_overlapping_campaign_is_incremental(self, tmp_path, tiny_config):
        cache_a = ResultCache(tmp_path)
        CampaignRunner(cache=cache_a).run([tiny_job(tiny_config, rate=0.003)])
        report = CampaignRunner(cache=ResultCache(tmp_path)).run(
            [tiny_job(tiny_config, rate=0.003), tiny_job(tiny_config, rate=0.004)]
        )
        assert report.cache_hits == 1 and report.executed == 1

    def test_progress_covers_hits_and_executions(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        job = tiny_job(tiny_config)
        CampaignRunner(cache=cache).run([job])
        seen: list[tuple[int, int, bool]] = []
        CampaignRunner(cache=cache).run(
            [job, tiny_job(tiny_config, seed=3)],
            progress=lambda done, total, _job, result: seen.append(
                (done, total, result.cached)
            ),
        )
        assert seen == [(1, 2, True), (2, 2, False)]

    def test_hit_ratio_ignores_duplicates(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        job = tiny_job(tiny_config)
        CampaignRunner(cache=cache).run([job])
        report = CampaignRunner(cache=cache).run([job, tiny_job(tiny_config)])
        assert report.deduplicated == 1
        assert report.hit_ratio == 1.0

    def test_raise_if_failed(self, tiny_config):
        report = CampaignRunner().run([tiny_job(tiny_config, algorithm="bogus")])
        assert len(report.errors) == 1
        with pytest.raises(RuntimeError):
            report.raise_if_failed()

    def test_serial_backend_reports_progress_in_order(self, tiny_config):
        jobs = [tiny_job(tiny_config, seed=s) for s in (1, 2)]
        order: list[int] = []
        SerialBackend().run(jobs, on_result=lambda done, total, j, r: order.append(done))
        assert order == [1, 2]


class TestKernelCacheIdentity:
    """The kernel preference must never split the content-addressed cache.

    The cycle kernels are bit-identical by contract (enforced by
    tests/test_kernel_equivalence.py), so ``Job.kernel`` is deliberately
    excluded from the canonical form: one scenario simulated under either
    kernel is ONE cache entry, and entries written by different kernels
    are byte-identical modulo wall-clock provenance.
    """

    def test_kernel_excluded_from_key_and_canonical(self, tiny_config):
        jobs = [
            tiny_job(tiny_config, kernel=k)
            for k in ("auto", "reference", "vector")
        ]
        assert len({job.key() for job in jobs}) == 1
        assert all("kernel" not in job.canonical() for job in jobs)

    def test_kernel_survives_make_and_validates(self, tiny_config):
        assert tiny_job(tiny_config, kernel="vector").kernel == "vector"
        with pytest.raises(ConfigurationError):
            tiny_job(tiny_config, kernel="turbo")

    def test_both_kernels_write_one_identical_entry(self, tmp_path, tiny_config):
        import dataclasses

        entries = {}
        for kernel in ("reference", "vector"):
            cache = ResultCache(tmp_path / kernel)
            job = tiny_job(tiny_config, kernel=kernel)
            result = execute_job(job).raise_if_failed()
            # duration_s is wall-clock provenance (excluded from result
            # equality); pin it so the stored bytes are comparable.
            cache.put(job, dataclasses.replace(result, duration_s=0.0))
            path = cache.path_for(job)
            entries[kernel] = (path.relative_to(tmp_path / kernel), path.read_bytes())
        ref_rel, ref_bytes = entries["reference"]
        vec_rel, vec_bytes = entries["vector"]
        assert ref_rel == vec_rel  # same key, same shard: one entry
        assert ref_bytes == vec_bytes

    def test_vector_entry_serves_reference_job(self, tmp_path, tiny_config):
        cache = ResultCache(tmp_path)
        vec_job = tiny_job(tiny_config, kernel="vector")
        cache.put(vec_job, execute_job(vec_job))
        hit = cache.get(tiny_job(tiny_config, kernel="reference"))
        assert hit is not None and hit.cached
