"""Cost model of equations (1)-(6) with hand-computed examples."""

import math

import pytest

from repro.core.vl_selection import (
    SelectionProblem,
    distance_based_selection,
    distance_cost,
    load_cost,
    selection_cost,
    vl_loads,
)
from repro.errors import OptimizationError


@pytest.fixture()
def tiny_problem():
    """Three routers on a row, two VLs at the ends, uniform traffic."""
    return SelectionProblem.uniform(
        router_positions=[(0, 0), (1, 0), (2, 0)],
        vl_positions=[(0, 0), (2, 0)],
        rho=0.01,
    )


class TestProblemValidation:
    def test_needs_a_vl(self):
        with pytest.raises(OptimizationError):
            SelectionProblem(((0, 0),), (), (1.0,))

    def test_traffic_length_must_match(self):
        with pytest.raises(OptimizationError):
            SelectionProblem(((0, 0),), ((0, 0),), (1.0, 2.0))

    def test_rejects_negative_traffic(self):
        with pytest.raises(OptimizationError):
            SelectionProblem(((0, 0),), ((0, 0),), (-1.0,))

    def test_rejects_negative_rho(self):
        with pytest.raises(OptimizationError):
            SelectionProblem(((0, 0),), ((0, 0),), (1.0,), rho=-0.1)

    def test_distance_is_manhattan(self, tiny_problem):
        assert tiny_problem.distance(0, 0) == 0
        assert tiny_problem.distance(0, 1) == 2
        assert tiny_problem.distance(1, 1) == 1


class TestEquation1Loads:
    def test_uniform_loads(self, tiny_problem):
        # routers 0,1 -> VL0; router 2 -> VL1
        assert vl_loads(tiny_problem, [0, 0, 1]) == [2.0, 1.0]

    def test_weighted_loads(self):
        problem = SelectionProblem(
            router_positions=((0, 0), (1, 0)),
            vl_positions=((0, 0), (1, 0)),
            traffic=(0.3, 0.7),
        )
        assert vl_loads(problem, [1, 1]) == [0.0, 1.0]


class TestEquation3LoadCost:
    def test_perfect_balance_is_zero(self, tiny_problem):
        # 3 routers over 2 VLs cannot balance perfectly; use 4-router case.
        problem = SelectionProblem.uniform(
            [(0, 0), (1, 0), (2, 0), (3, 0)], [(0, 0), (3, 0)]
        )
        assert load_cost(problem, [0, 0, 1, 1]) == pytest.approx(0.0)

    def test_hand_computed_imbalance(self, tiny_problem):
        # loads [2, 1], avg 1.5 -> |2-1.5|/1.5 + |1-1.5|/1.5 = 2/3
        assert load_cost(tiny_problem, [0, 0, 1]) == pytest.approx(2.0 / 3.0)

    def test_zero_traffic_costs_nothing(self):
        problem = SelectionProblem(
            router_positions=((0, 0), (1, 0)),
            vl_positions=((0, 0), (1, 0)),
            traffic=(0.0, 0.0),
        )
        assert load_cost(problem, [0, 0]) == 0.0


class TestEquation5DistanceCost:
    def test_hand_computed(self, tiny_problem):
        # router0->VL0: 0, router1->VL0: 1, router2->VL1: 0
        assert distance_cost(tiny_problem, [0, 0, 1]) == 1.0

    def test_worst_assignment(self, tiny_problem):
        # everyone to the far VL: 2 + 1 + 0
        assert distance_cost(tiny_problem, [1, 1, 1]) == 3.0


class TestEquation6OverallCost:
    def test_combines_with_rho(self, tiny_problem):
        expected = 0.01 * 1.0 + 2.0 / 3.0
        assert selection_cost(tiny_problem, [0, 0, 1]) == pytest.approx(expected)

    def test_validates_selection_length(self, tiny_problem):
        with pytest.raises(OptimizationError):
            selection_cost(tiny_problem, [0, 0])

    def test_validates_vl_indices(self, tiny_problem):
        with pytest.raises(OptimizationError):
            selection_cost(tiny_problem, [0, 0, 5])


class TestDistanceBasedSelection:
    def test_picks_closest(self, tiny_problem):
        # middle router ties (distance 1 both) -> lower index wins
        assert distance_based_selection(tiny_problem) == (0, 0, 1)

    def test_matches_paper_fig3a_shape(self):
        """Fault-free 4x4 chiplet: closest-VL gives a 4/4/4/4 split."""
        problem = SelectionProblem.uniform(
            [(x, y) for y in range(4) for x in range(4)],
            [(1, 0), (2, 0), (1, 3), (2, 3)],
        )
        selection = distance_based_selection(problem)
        loads = vl_loads(problem, selection)
        assert sorted(loads) == [4.0, 4.0, 4.0, 4.0]

    def test_paper_fig3b_unbalanced_under_fault(self):
        """One faulty VL: distance-based gives the paper's 8/4/4 split."""
        problem = SelectionProblem.uniform(
            [(x, y) for y in range(4) for x in range(4)],
            [(2, 0), (1, 3), (2, 3)],  # VL (1,0) faulty
        )
        selection = distance_based_selection(problem)
        loads = vl_loads(problem, selection)
        assert sorted(loads) == [4.0, 4.0, 8.0]
