"""Extension features: adaptive online selection, VL serialization,
ablation experiment plumbing."""

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.fault.model import chiplet_fault_pattern
from repro.network.flit import Packet
from repro.network.simulator import Simulator
from repro.routing.deft import DeftRouting, VlSelectionStrategy
from repro.routing.registry import make_algorithm
from repro.traffic.synthetic import UniformTraffic

from .routing_helpers import walk_packet


class TestAdaptiveStrategy:
    def test_registered(self, system4):
        algo = make_algorithm("deft-ada", system4)
        assert algo.name == "DeFT-Ada"
        assert algo.strategy is VlSelectionStrategy.ADAPTIVE

    def test_tracks_outstanding_load(self, system4):
        algo = DeftRouting(system4, VlSelectionStrategy.ADAPTIVE)
        src = system4.router_id(0, 0, 0)
        dst = system4.chiplet_routers(1)[0].id
        packet = Packet(0, src, dst, 8, 0)
        algo.prepare_packet(packet)
        assert algo._outstanding_down[packet.down_vl] == 1
        algo._bind_up_vl(packet)
        assert algo._outstanding_up[packet.up_vl] == 1
        algo.on_packet_delivered(packet, 100)
        assert algo._outstanding_down[packet.down_vl] == 0
        assert algo._outstanding_up[packet.up_vl] == 0

    def test_spreads_load_across_vls(self, system4):
        """With equal distances, consecutive packets take different VLs."""
        algo = DeftRouting(system4, VlSelectionStrategy.ADAPTIVE)
        src = system4.router_id(0, 1, 1)
        dst = system4.chiplet_routers(1)[5].id
        chosen = set()
        for i in range(8):
            packet = Packet(i, src, dst, 8, 0)
            algo.prepare_packet(packet)
            chosen.add(packet.down_vl)
        assert len(chosen) >= 2

    def test_respects_faults(self, system4):
        algo = DeftRouting(system4, VlSelectionStrategy.ADAPTIVE)
        algo.set_fault_state(chiplet_fault_pattern(system4, 0, down_faulty=[0, 1]))
        src = system4.router_id(0, 1, 1)
        dst = system4.chiplet_routers(1)[0].id
        for i in range(10):
            packet = Packet(i, src, dst, 8, 0)
            algo.prepare_packet(packet)
            assert system4.vls[packet.down_vl].local_index in (2, 3)

    def test_routes_deliver_with_vn_rules(self, system4):
        algo = DeftRouting(system4, VlSelectionStrategy.ADAPTIVE)
        for src in system4.cores[::13]:
            for dst in system4.cores[::11]:
                if src != dst:
                    path, _ = walk_packet(system4, algo, src, dst, verify_vn_rules=True)
                    assert path[-1] == dst

    def test_full_simulation_delivers(self, system4, fast_config):
        algo = make_algorithm("deft-ada", system4)
        traffic = UniformTraffic(system4, 0.005, seed=3)
        report = Simulator(system4, algo, traffic, fast_config).run()
        assert not report.deadlocked
        assert report.stats.delivered_ratio == 1.0

    def test_reset_clears_outstanding(self, system4):
        algo = DeftRouting(system4, VlSelectionStrategy.ADAPTIVE)
        src = system4.router_id(0, 0, 0)
        dst = system4.chiplet_routers(1)[0].id
        packet = Packet(0, src, dst, 8, 0)
        algo.prepare_packet(packet)
        algo.reset_runtime_state()
        assert not algo._outstanding_down
        assert not algo._outstanding_up


class TestVlSerialization:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(vl_serialization=0)

    def test_serialization_one_is_default_behaviour(self, system4, fast_config):
        base = fast_config
        explicit = fast_config.replace(vl_serialization=1)
        reports = []
        for cfg in (base, explicit):
            algo = make_algorithm("deft", system4)
            traffic = UniformTraffic(system4, 0.004, seed=6)
            reports.append(Simulator(system4, algo, traffic, cfg).run())
        assert reports[0].stats.average_latency == reports[1].stats.average_latency

    def test_serialization_slows_inter_chiplet_traffic(self, system4, fast_config):
        latencies = {}
        for factor in (1, 4):
            cfg = fast_config.replace(vl_serialization=factor)
            algo = make_algorithm("deft", system4)
            traffic = UniformTraffic(system4, 0.004, seed=6)
            report = Simulator(system4, algo, traffic, cfg).run()
            assert not report.deadlocked
            assert report.stats.delivered_ratio == 1.0
            latencies[factor] = report.stats.average_latency
        assert latencies[4] > latencies[1]

    def test_serialized_rc_still_delivers(self, system4, fast_config):
        cfg = fast_config.replace(vl_serialization=2)
        algo = make_algorithm("rc", system4)
        traffic = UniformTraffic(system4, 0.003, seed=8)
        report = Simulator(system4, algo, traffic, cfg).run()
        assert not report.deadlocked
        assert report.stats.delivered_ratio == 1.0


class TestAblationExperiments:
    def test_rho_sweep_smoke(self):
        from repro.experiments import ablations

        result = ablations.rho_sweep(scale=0.1)
        assert set(result.data) == set(ablations.RHO_VALUES)
        # Static table metrics are scale-independent and must always hold.
        static_checks = [ok for desc, ok in result.checks if "rho" in desc][:2]
        assert all(static_checks)

    def test_serialization_sweep_smoke(self):
        from repro.experiments import ablations

        result = ablations.serialization_sweep(scale=0.1)
        assert len(result.data) == len(ablations.SERIALIZATION_FACTORS)
